#include "auth/scheme.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/authprob.hpp"
#include "core/tesla.hpp"
#include "core/topologies.hpp"
#include "util/check.hpp"

namespace mcauth {

std::vector<AuthPacket> SchemeSender::make_block(
    std::uint32_t block_id, const std::vector<std::vector<std::uint8_t>>& payloads) {
    (void)block_id;
    (void)payloads;
    throw std::logic_error("SchemeSender: make_block not supported by this scheme");
}

AuthPacket SchemeSender::make_packet(std::uint32_t block_id, std::uint32_t index,
                                     std::vector<std::uint8_t> payload, double send_time) {
    (void)block_id;
    (void)index;
    (void)payload;
    (void)send_time;
    throw std::logic_error("SchemeSender: make_packet not supported by this scheme");
}

// ------------------------------------------------------------- hash chain

HashChainSchemeSender::HashChainSchemeSender(HashChainConfig config, Signer& signer)
    : sender_(std::move(config), signer) {
    traits_.delivery = SchemeTraits::Delivery::kBlockArrivalOrder;
    traits_.pacing = SchemeTraits::Pacing::kBlockIncremental;
    traits_.payloads_upfront = true;
    traits_.per_block_finish = true;
    traits_.replicate_signature = true;
}

std::vector<AuthPacket> HashChainSchemeSender::make_block(
    std::uint32_t block_id, const std::vector<std::vector<std::uint8_t>>& payloads) {
    return sender_.make_block(block_id, payloads);
}

HashChainSchemeReceiver::HashChainSchemeReceiver(
    HashChainConfig config, std::unique_ptr<SignatureVerifier> verifier)
    : receiver_(std::move(config), std::move(verifier)) {}

std::vector<VerifyEvent> HashChainSchemeReceiver::on_packet(const AuthPacket& packet,
                                                            double arrival_time) {
    (void)arrival_time;  // cascades are arrival-driven, not clock-driven
    return receiver_.on_packet(packet);
}

std::vector<VerifyEvent> HashChainSchemeReceiver::finish_block(std::uint32_t block_id) {
    return receiver_.finish_block(block_id);
}

std::vector<VerifyEvent> HashChainSchemeReceiver::finish_all() {
    return receiver_.finish_all();
}

std::size_t HashChainSchemeReceiver::buffered_packets() const {
    return receiver_.buffered_packets();
}

// ------------------------------------------------------------------- tree

TreeSchemeSender::TreeSchemeSender(TreeSchemeConfig config, Signer& signer)
    : sender_(config, signer) {
    traits_.delivery = SchemeTraits::Delivery::kSendOrder;
    traits_.pacing = SchemeTraits::Pacing::kBlockMultiplicative;
    traits_.payloads_upfront = true;
    traits_.per_block_finish = false;  // every verdict is immediate
}

std::vector<AuthPacket> TreeSchemeSender::make_block(
    std::uint32_t block_id, const std::vector<std::vector<std::uint8_t>>& payloads) {
    return sender_.make_block(block_id, payloads);
}

TreeSchemeReceiver::TreeSchemeReceiver(TreeSchemeConfig config,
                                       std::unique_ptr<SignatureVerifier> verifier)
    : receiver_(config, std::move(verifier)) {}

std::vector<VerifyEvent> TreeSchemeReceiver::on_packet(const AuthPacket& packet,
                                                       double arrival_time) {
    (void)arrival_time;
    return {receiver_.on_packet(packet)};
}

// -------------------------------------------------------------- sign-each

SignEachSchemeSender::SignEachSchemeSender(Signer& signer) : sender_(signer) {
    traits_.delivery = SchemeTraits::Delivery::kSendOrder;
    traits_.pacing = SchemeTraits::Pacing::kContinuousIncremental;
    traits_.payloads_upfront = false;
    traits_.per_block_finish = false;
}

AuthPacket SignEachSchemeSender::make_packet(std::uint32_t block_id, std::uint32_t index,
                                             std::vector<std::uint8_t> payload,
                                             double send_time) {
    (void)send_time;  // signatures carry no timing
    return sender_.make_packet(block_id, index, std::move(payload));
}

SignEachSchemeReceiver::SignEachSchemeReceiver(std::unique_ptr<SignatureVerifier> verifier)
    : receiver_(std::move(verifier)) {}

std::vector<VerifyEvent> SignEachSchemeReceiver::on_packet(const AuthPacket& packet,
                                                           double arrival_time) {
    (void)arrival_time;
    return {receiver_.on_packet(packet)};
}

// ------------------------------------------------------------------ tesla

TeslaSchemeSender::TeslaSchemeSender(TeslaConfig config, Signer& signer, Rng& rng,
                                     double start_time)
    : sender_(config, signer, rng, start_time) {
    traits_.delivery = SchemeTraits::Delivery::kStreamArrivalOrder;
    traits_.pacing = SchemeTraits::Pacing::kContinuousIncremental;
    traits_.payloads_upfront = false;
    traits_.per_block_finish = false;
    traits_.stream_tally = true;
    traits_.clock_start_slots = 1.0;  // interval 1 starts at sender time 0
}

AuthPacket TeslaSchemeSender::make_packet(std::uint32_t block_id, std::uint32_t index,
                                          std::vector<std::uint8_t> payload,
                                          double send_time) {
    (void)block_id;  // TESLA numbers packets itself, per sender
    (void)index;
    return sender_.make_packet(std::move(payload), send_time);
}

TeslaSchemeReceiver::TeslaSchemeReceiver(TeslaConfig config,
                                         std::unique_ptr<SignatureVerifier> verifier,
                                         double max_clock_skew)
    : receiver_(config, std::move(verifier), max_clock_skew) {}

bool TeslaSchemeReceiver::on_preamble(const AuthPacket& packet) {
    return receiver_.on_bootstrap(packet);
}

std::vector<VerifyEvent> TeslaSchemeReceiver::on_packet(const AuthPacket& packet,
                                                        double arrival_time) {
    return receiver_.on_packet(packet, arrival_time);
}

std::vector<VerifyEvent> TeslaSchemeReceiver::finish_all() { return receiver_.finish(); }

std::size_t TeslaSchemeReceiver::buffered_packets() const {
    return receiver_.buffered_packets();
}

// ----------------------------------------------------------------- factory

namespace {

SchemePair make_hash_chain_pair(HashChainConfig config, Signer& signer) {
    SchemePair pair;
    pair.receiver =
        std::make_unique<HashChainSchemeReceiver>(config, signer.make_verifier());
    pair.sender = std::make_unique<HashChainSchemeSender>(std::move(config), signer);
    return pair;
}

void register_builtins(SchemeFactory& factory) {
    factory.register_scheme(
        "rohatgi",
        [](const SchemeSpec& spec, Signer& signer, Rng&) {
            return make_hash_chain_pair(
                rohatgi_config(spec.block_size, spec.hash_bytes), signer);
        },
        [](const SchemeSpec&, std::size_t n, double p) {
            return recurrence_auth_prob(make_rohatgi(n), p).q_min;
        });
    factory.register_scheme(
        "emss",
        [](const SchemeSpec& spec, Signer& signer, Rng&) {
            const auto m = static_cast<std::size_t>(spec.param("m", 2));
            const auto d = static_cast<std::size_t>(spec.param("d", 1));
            return make_hash_chain_pair(
                emss_config(spec.block_size, m, d, spec.hash_bytes), signer);
        },
        [](const SchemeSpec& spec, std::size_t n, double p) {
            const auto m = static_cast<std::size_t>(spec.param("m", 2));
            const auto d = static_cast<std::size_t>(spec.param("d", 1));
            return recurrence_auth_prob(make_emss(n, m, d), p).q_min;
        });
    factory.register_scheme(
        "ac",
        [](const SchemeSpec& spec, Signer& signer, Rng&) {
            const auto a = static_cast<std::size_t>(spec.param("a", 3));
            const auto b = static_cast<std::size_t>(spec.param("b", 3));
            return make_hash_chain_pair(
                augmented_chain_config(spec.block_size, a, b, spec.hash_bytes), signer);
        },
        [](const SchemeSpec& spec, std::size_t n, double p) {
            const auto a = static_cast<std::size_t>(spec.param("a", 3));
            const auto b = static_cast<std::size_t>(spec.param("b", 3));
            return recurrence_auth_prob(make_augmented_chain(n, a, b), p).q_min;
        });
    factory.register_scheme(
        "tree",
        [](const SchemeSpec& spec, Signer& signer, Rng&) {
            TreeSchemeConfig config;
            config.block_size = spec.block_size;
            config.hash_bytes = spec.hash_bytes;
            config.arity = static_cast<std::size_t>(spec.param("arity", 2));
            SchemePair pair;
            pair.sender = std::make_unique<TreeSchemeSender>(config, signer);
            pair.receiver =
                std::make_unique<TreeSchemeReceiver>(config, signer.make_verifier());
            return pair;
        },
        [](const SchemeSpec&, std::size_t n, double p) {
            return recurrence_auth_prob(make_auth_tree(n), p).q_min;
        });
    factory.register_scheme(
        "sign-each",
        [](const SchemeSpec&, Signer& signer, Rng&) {
            SchemePair pair;
            pair.sender = std::make_unique<SignEachSchemeSender>(signer);
            pair.receiver =
                std::make_unique<SignEachSchemeReceiver>(signer.make_verifier());
            return pair;
        },
        [](const SchemeSpec&, std::size_t, double) { return 1.0; });
    factory.register_scheme(
        "tesla",
        [](const SchemeSpec& spec, Signer& signer, Rng& rng) {
            TeslaConfig config;
            config.interval_duration = spec.param("interval", 0.1);
            config.disclosure_lag = static_cast<std::size_t>(spec.param("lag", 2));
            config.chain_length = static_cast<std::size_t>(spec.param("chain", 1024));
            config.mac_bytes = spec.hash_bytes;
            SchemePair pair;
            pair.sender = std::make_unique<TeslaSchemeSender>(
                config, signer, rng, spec.param("start", 0.0));
            pair.receiver = std::make_unique<TeslaSchemeReceiver>(
                config, signer.make_verifier(), spec.param("skew", 0.01));
            return pair;
        },
        [](const SchemeSpec& spec, std::size_t n, double p) {
            TeslaParams params;
            params.n = n;
            params.t_disclose = spec.param("t_disclose", 1.0);
            params.mu = spec.param("mu", 0.2);
            params.sigma = spec.param("sigma", 0.1);
            params.p = p;
            return analyze_tesla(params).q_min;
        });
}

}  // namespace

SchemeFactory& SchemeFactory::instance() {
    static SchemeFactory factory = [] {
        SchemeFactory f;
        register_builtins(f);
        return f;
    }();
    return factory;
}

void SchemeFactory::register_scheme(std::string kind, Builder builder,
                                    Predictor predictor) {
    MCAUTH_EXPECTS(!kind.empty());
    MCAUTH_EXPECTS(builder != nullptr);
    for (Entry& e : entries_) {
        if (e.kind == kind) {  // re-registration replaces (test fakes)
            e.builder = std::move(builder);
            e.predictor = std::move(predictor);
            return;
        }
    }
    entries_.push_back({std::move(kind), std::move(builder), std::move(predictor)});
}

bool SchemeFactory::has(const std::string& kind) const {
    for (const Entry& e : entries_)
        if (e.kind == kind) return true;
    return false;
}

std::vector<std::string> SchemeFactory::kinds() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.kind);
    return out;
}

const SchemeFactory::Entry& SchemeFactory::entry(const std::string& kind) const {
    for (const Entry& e : entries_)
        if (e.kind == kind) return e;
    throw std::invalid_argument("SchemeFactory: unknown scheme kind '" + kind + "'");
}

SchemePair SchemeFactory::create(const SchemeSpec& spec, Signer& signer, Rng& rng) const {
    SchemePair pair = entry(spec.kind).builder(spec, signer, rng);
    MCAUTH_ENSURES(pair.sender != nullptr && pair.receiver != nullptr);
    return pair;
}

double SchemeFactory::predicted_q_min(const SchemeSpec& spec, std::size_t n,
                                      double p) const {
    const Entry& e = entry(spec.kind);
    if (!e.predictor) return std::numeric_limits<double>::quiet_NaN();
    return e.predictor(spec, n, p);
}

}  // namespace mcauth

// "Sign-each" baseline (§1): every packet carries its own signature.
//
// Perfect robustness and zero delay, but the computation and bandwidth
// overhead the whole signature-amortization literature exists to avoid.
// Included as the upper baseline for Fig. 10-style overhead comparisons
// and the micro-benchmarks.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "auth/hash_chain_scheme.hpp"  // VerifyEvent / VerifyStatus
#include "auth/packet.hpp"
#include "crypto/signature.hpp"

namespace mcauth {

class SignEachSender {
public:
    explicit SignEachSender(Signer& signer) : signer_(signer) {}

    AuthPacket make_packet(std::uint32_t block_id, std::uint32_t index,
                           std::vector<std::uint8_t> payload);

private:
    Signer& signer_;
};

class SignEachReceiver {
public:
    explicit SignEachReceiver(std::unique_ptr<SignatureVerifier> verifier);

    VerifyEvent on_packet(const AuthPacket& packet) const;

    /// Block-granular path: verdicts identical to on_packet on each element,
    /// but the signatures go through the verifier's batch entry point (RSA
    /// screening / multi-buffer HMAC). Not thread-safe (recycles an
    /// internal arena).
    std::vector<VerifyEvent> on_block(std::span<const AuthPacket> packets) const;

private:
    std::unique_ptr<SignatureVerifier> verifier_;
    mutable PacketArena arena_;  // recycled per on_block call
};

}  // namespace mcauth

// TESLA codec (Perrig et al. [5, 6]; analyzed in §3.2 of the paper).
//
// Sender: time is sliced into intervals of fixed duration; interval i uses
// MAC key K'_i = F'(K_i) where the K_i form a one-way chain committed to in
// a signed bootstrap packet. A packet sent in interval i carries
// MAC_{K'_i}(packet) and *discloses* the chain key of interval i - d (the
// disclosure lag). T_disclose = d * interval_duration.
//
// Receiver: a packet claiming interval i is SAFE only if, at its arrival,
// the sender cannot yet have disclosed K_i (judged against the receiver's
// clock plus the maximum clock skew). Safe packets are buffered until K_i
// arrives — inside any later packet, since a later chain key re-derives all
// earlier ones (this is the λ_i = 1 - p^{n+1-i} robustness of Eq. 6).
// Unsafe packets are dropped unverified: that is the ξ condition, the price
// TESLA pays to delay and jitter (Figs. 3-4).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "auth/hash_chain_scheme.hpp"  // VerifyEvent / VerifyStatus
#include "auth/packet.hpp"
#include "crypto/keychain.hpp"
#include "crypto/signature.hpp"
#include "util/rng.hpp"

namespace mcauth {

struct TeslaConfig {
    double interval_duration = 0.1;  // seconds
    std::size_t disclosure_lag = 2;  // d intervals; T_disclose = d * duration
    std::size_t chain_length = 1024; // usable intervals
    std::size_t mac_bytes = 16;      // truncated MAC on the wire

    double t_disclose() const noexcept {
        return interval_duration * static_cast<double>(disclosure_lag);
    }
};

class TeslaSender {
public:
    /// `start_time` is the sender-clock instant interval 1 begins.
    TeslaSender(TeslaConfig config, Signer& signer, Rng& rng, double start_time);

    /// The signed bootstrap packet (commitment, timing, lag). Send first —
    /// and, per the paper's P_sign assumption, ideally several times.
    AuthPacket bootstrap() const;

    /// Wrap a payload sent at sender-clock `send_time` (must not precede
    /// start_time; streams longer than the chain throw).
    AuthPacket make_packet(std::vector<std::uint8_t> payload, double send_time);

    /// Batch form of make_packet: wraps payloads[i] at send_times[i],
    /// byte-identical to the equivalent sequence of make_packet calls.
    /// Packets are grouped by MAC interval — one derived key per interval,
    /// the whole group MAC'd through the multi-buffer hasher. All-or-
    /// nothing: if any send_time exhausts the chain, throws before any
    /// packet index is consumed. Not thread-safe (recycles an internal
    /// arena).
    std::vector<AuthPacket> make_packets(std::vector<std::vector<std::uint8_t>> payloads,
                                         std::span<const double> send_times);

    /// Interval in force at `send_time` (1-based).
    std::size_t interval_of(double send_time) const;

    const TeslaConfig& config() const noexcept { return config_; }

private:
    TeslaConfig config_;
    Signer& signer_;
    double start_time_;
    TeslaKeyChain chain_;
    std::uint32_t next_index_ = 0;  // per-sender packet numbering
    PacketArena arena_;             // recycled per make_packets call
};

class TeslaReceiver {
public:
    /// `max_clock_skew` bounds |receiver clock - sender clock| (TESLA's
    /// loose-synchronization requirement).
    TeslaReceiver(TeslaConfig config, std::unique_ptr<SignatureVerifier> verifier,
                  double max_clock_skew);

    /// Process the bootstrap; false if its signature is invalid. Packets
    /// arriving before a valid bootstrap are dropped (nothing to verify
    /// against).
    bool on_bootstrap(const AuthPacket& packet);

    /// Process a data packet arriving at receiver-clock `arrival_time`.
    /// May emit verdicts for earlier buffered packets (key disclosure
    /// cascades). Unsafe (late) packets yield kUnverifiable immediately.
    std::vector<VerifyEvent> on_packet(const AuthPacket& packet, double arrival_time);

    /// End of stream: all still-buffered packets become kUnverifiable.
    std::vector<VerifyEvent> finish();

    std::size_t buffered_packets() const noexcept { return buffered_.size(); }
    bool bootstrapped() const noexcept { return verifier_state_.has_value(); }

private:
    struct Buffered {
        AuthPacket packet;
    };

    std::vector<VerifyEvent> try_release(std::size_t up_to_interval);

    TeslaConfig config_;
    std::unique_ptr<SignatureVerifier> signature_verifier_;
    double max_clock_skew_;
    double start_time_ = 0.0;
    std::optional<TeslaKeyVerifier> verifier_state_;
    std::multimap<std::size_t, Buffered> buffered_;  // keyed by MAC interval
};

}  // namespace mcauth

// Wire format shared by all authenticated-stream codecs.
//
// One packet carries its payload plus whatever authentication material its
// scheme assigns to it: embedded hashes of other packets (hash chaining), a
// signature (P_sign / sign-each / tree roots), a Merkle path (Wong–Lam), or
// a MAC plus a disclosed chain key (TESLA). Fields a scheme does not use
// stay empty and cost nothing on the wire.
//
// Encoding is a simple explicit little-endian TLV-free layout — length-
// prefixed sections in fixed order — so overhead accounting is exact and
// decode failures are detectable. The *authenticated portion* of a packet
// (what hashes and MACs cover) is the canonical encoding of everything
// except the signature field, so a tampered payload, a tampered embedded
// hash, or a reassigned sequence number all invalidate authentication.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace mcauth {

enum class PacketKind : std::uint8_t {
    kData = 0,
    kSignature = 1,  // the block's P_sign
    kBootstrap = 2,  // TESLA bootstrap
};

/// An embedded hash: "the packet at index `target` in this block hashes to
/// `digest`" (digest possibly truncated to the scheme's l_hash).
struct HashRef {
    std::uint32_t target = 0;
    std::vector<std::uint8_t> digest;
};

struct AuthPacket {
    std::uint32_t block_id = 0;
    std::uint32_t index = 0;  // transmission index within the block
    /// Number of packets in this block. 0 = "fixed, configured out of
    /// band"; nonzero enables variable-size blocks (StreamingAuthenticator)
    /// — and is part of the authenticated portion, because the
    /// index->vertex mapping (hence every verification decision) depends
    /// on it.
    std::uint32_t block_size = 0;
    PacketKind kind = PacketKind::kData;
    std::vector<std::uint8_t> payload;
    std::vector<HashRef> hashes;
    std::vector<std::uint8_t> signature;

    // TESLA-only fields.
    std::uint32_t mac_interval = 0;       // interval whose key MACs this packet
    std::vector<std::uint8_t> mac;        // HMAC over the authenticated portion
    std::uint32_t disclosed_interval = 0;  // interval of the disclosed key (0 = none)
    std::vector<std::uint8_t> disclosed_key;

    /// Canonical byte encoding of the full packet (what travels).
    std::vector<std::uint8_t> encode() const;

    /// Canonical encoding of the authenticated portion: everything except
    /// the signature and (for TESLA) the MAC and disclosed key, which are
    /// verification material *about* the packet rather than part of it.
    std::vector<std::uint8_t> authenticated_bytes() const;

    /// Digest of the authenticated portion, truncated to `hash_bytes`.
    std::vector<std::uint8_t> digest(std::size_t hash_bytes) const;

    /// Total size on the wire.
    std::size_t wire_size() const { return encode().size(); }

    static std::optional<AuthPacket> decode(std::span<const std::uint8_t> wire);
};

}  // namespace mcauth

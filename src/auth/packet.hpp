// Wire format shared by all authenticated-stream codecs.
//
// One packet carries its payload plus whatever authentication material its
// scheme assigns to it: embedded hashes of other packets (hash chaining), a
// signature (P_sign / sign-each / tree roots), a Merkle path (Wong–Lam), or
// a MAC plus a disclosed chain key (TESLA). Fields a scheme does not use
// stay empty and cost nothing on the wire.
//
// Encoding is a simple explicit little-endian TLV-free layout — length-
// prefixed sections in fixed order — so overhead accounting is exact and
// decode failures are detectable. The *authenticated portion* of a packet
// (what hashes and MACs cover) is the canonical encoding of everything
// except the signature field, so a tampered payload, a tampered embedded
// hash, or a reassigned sequence number all invalidate authentication.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "crypto/sha256.hpp"

namespace mcauth {

/// Bump allocator for packet wire bytes and decoded views. Hot loops encode
/// or decode a whole block into one arena and `reset()` it at the block
/// boundary: allocation is pointer arithmetic, chunks are recycled, and no
/// per-packet `std::vector` churn remains.
///
/// Lifetime rule: every span handed out by `alloc`/`encode_into`/
/// `PacketView::decode` borrows arena storage and dies at the next
/// `reset()` (or when the arena does). Arenas are not thread-safe; use one
/// per sender/verifier loop.
class PacketArena {
public:
    explicit PacketArena(std::size_t chunk_bytes = 1 << 16);

    /// Uninitialized storage, valid until reset(). Never returns null; a
    /// request larger than the chunk size gets a dedicated chunk.
    std::span<std::uint8_t> alloc(std::size_t n);

    /// Typed array storage (trivially destructible T only — the arena never
    /// runs destructors).
    template <typename T>
    std::span<T> alloc_array(std::size_t n) {
        static_assert(std::is_trivially_destructible_v<T>);
        auto raw = alloc_aligned(n * sizeof(T), alignof(T));
        T* first = reinterpret_cast<T*>(raw.data());
        for (std::size_t i = 0; i < n; ++i) new (first + i) T();
        return {first, n};
    }

    /// Recycle all chunks; previously returned spans become invalid.
    void reset() noexcept;

    std::size_t bytes_in_use() const noexcept { return total_used_; }
    std::size_t chunk_count() const noexcept { return chunks_.size(); }

private:
    std::span<std::uint8_t> alloc_aligned(std::size_t n, std::size_t align);

    struct Chunk {
        std::unique_ptr<std::uint8_t[]> data;
        std::size_t capacity = 0;
    };

    std::vector<Chunk> chunks_;
    std::size_t active_ = 0;      // index of the chunk being filled
    std::size_t used_ = 0;        // bytes used in the active chunk
    std::size_t total_used_ = 0;  // bytes handed out since reset()
    std::size_t chunk_bytes_;
};

enum class PacketKind : std::uint8_t {
    kData = 0,
    kSignature = 1,  // the block's P_sign
    kBootstrap = 2,  // TESLA bootstrap
};

/// An embedded hash: "the packet at index `target` in this block hashes to
/// `digest`" (digest possibly truncated to the scheme's l_hash).
struct HashRef {
    std::uint32_t target = 0;
    std::vector<std::uint8_t> digest;
};

struct AuthPacket {
    std::uint32_t block_id = 0;
    std::uint32_t index = 0;  // transmission index within the block
    /// Number of packets in this block. 0 = "fixed, configured out of
    /// band"; nonzero enables variable-size blocks (StreamingAuthenticator)
    /// — and is part of the authenticated portion, because the
    /// index->vertex mapping (hence every verification decision) depends
    /// on it.
    std::uint32_t block_size = 0;
    PacketKind kind = PacketKind::kData;
    std::vector<std::uint8_t> payload;
    std::vector<HashRef> hashes;
    std::vector<std::uint8_t> signature;

    // TESLA-only fields.
    std::uint32_t mac_interval = 0;       // interval whose key MACs this packet
    std::vector<std::uint8_t> mac;        // HMAC over the authenticated portion
    std::uint32_t disclosed_interval = 0;  // interval of the disclosed key (0 = none)
    std::vector<std::uint8_t> disclosed_key;

    /// Canonical byte encoding of the full packet (what travels).
    std::vector<std::uint8_t> encode() const;

    /// Canonical encoding of the authenticated portion: everything except
    /// the signature and (for TESLA) the MAC and disclosed key, which are
    /// verification material *about* the packet rather than part of it.
    std::vector<std::uint8_t> authenticated_bytes() const;

    /// Digest of the authenticated portion, truncated to `hash_bytes`.
    std::vector<std::uint8_t> digest(std::size_t hash_bytes) const;

    /// Total size on the wire.
    std::size_t wire_size() const { return encode().size(); }

    /// Arena-backed variants of encode()/authenticated_bytes(): identical
    /// bytes, written into `arena` storage instead of a fresh vector. The
    /// returned span follows the arena lifetime rules above.
    std::span<const std::uint8_t> encode_into(PacketArena& arena) const;
    std::span<const std::uint8_t> authenticated_bytes_into(PacketArena& arena) const;

    static std::optional<AuthPacket> decode(std::span<const std::uint8_t> wire);
};

/// Zero-copy view of one embedded hash: `digest` points into the wire.
struct HashRefView {
    std::uint32_t target = 0;
    std::span<const std::uint8_t> digest;
};

/// Zero-copy decoded packet: every byte field is a span into the caller's
/// wire buffer (which must outlive the view), and the hash-ref array lives
/// in the decode arena. `authenticated` is the exact prefix of `wire` that
/// hashes, MACs and signatures cover — verifiers hash it straight off the
/// wire with no re-encoding.
struct PacketView {
    std::uint32_t block_id = 0;
    std::uint32_t index = 0;
    std::uint32_t block_size = 0;
    PacketKind kind = PacketKind::kData;
    std::uint32_t mac_interval = 0;
    std::uint32_t disclosed_interval = 0;

    std::span<const std::uint8_t> payload;
    std::span<const HashRefView> hashes;
    std::span<const std::uint8_t> signature;
    std::span<const std::uint8_t> mac;
    std::span<const std::uint8_t> disclosed_key;

    std::span<const std::uint8_t> wire;           // the full packet bytes
    std::span<const std::uint8_t> authenticated;  // prefix of `wire`

    /// Materialize an owning AuthPacket (interop/tests, not the hot path).
    AuthPacket to_packet() const;

    /// Parse `wire` without copying; the hash-ref array is allocated in
    /// `arena`. Accepts exactly the encodings AuthPacket::decode accepts.
    static std::optional<PacketView> decode(std::span<const std::uint8_t> wire,
                                            PacketArena& arena);
};

/// The authenticated encoding of a payload-only data-packet identity —
/// byte-identical to AuthPacket{block_id, index, payload}.authenticated_bytes()
/// without constructing the packet (no payload copy). This is what Merkle
/// leaf commitments hash in the tree scheme.
std::span<const std::uint8_t> encode_data_identity(PacketArena& arena, std::uint32_t block_id,
                                                   std::uint32_t index,
                                                   std::span<const std::uint8_t> payload);

}  // namespace mcauth

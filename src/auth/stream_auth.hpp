// Online (streaming) authentication over hash-chained blocks.
//
// §5 of the paper observes that "the number of packets in a block over a
// fixed period of time is normally not fixed and online constructions are
// necessary". HashChainSender/Receiver authenticate one fixed-size block;
// this layer turns them into a live stream API:
//
//   sender:   StreamingAuthenticator::push(payload, now) buffers payloads
//             and cuts a block when either the size cap or the latency
//             deadline is reached, building the block's dependence-graph at
//             its ACTUAL size via the configured topology factory. Each
//             emitted packet carries its block's geometry (block_size) in
//             the authenticated portion, so receivers need no out-of-band
//             size agreement.
//
//   receiver: StreamingVerifier routes packets by their declared geometry
//             to per-size HashChainReceivers (graphs are cached per size).
//             A forged geometry cannot cause misverification — block_size
//             is under the block's signature like everything else — it can
//             only make the forged packet fail.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "auth/hash_chain_scheme.hpp"

namespace mcauth {

struct StreamingOptions {
    std::size_t max_block = 64;    // cut when this many payloads are pending
    std::size_t min_block = 2;     // smallest block worth signing
    double max_latency = 0.25;     // cut when the oldest payload is this stale (s)
};

class StreamingAuthenticator {
public:
    /// `config.block_size` is ignored; the topology factory is invoked per
    /// block at the actual cut size. The signer must outlive this object.
    StreamingAuthenticator(HashChainConfig config, Signer& signer,
                           StreamingOptions options = {});

    /// Feed one payload at sender-clock `now`. Returns a fully signed block
    /// (in transmission order) when a cut triggers, else empty.
    std::vector<AuthPacket> push(std::vector<std::uint8_t> payload, double now);

    /// Cut whatever is pending (end of stream, or an external deadline).
    /// May return empty if fewer than min_block payloads are pending and
    /// `force` is false.
    std::vector<AuthPacket> flush(double now, bool force = true);

    /// Swap the topology factory used for subsequent cuts — the adaptive
    /// loop's redesign hook (adapt/controller.hpp). Blocks already emitted
    /// are unaffected; receivers follow with no out-of-band agreement
    /// because geometry and hash targets ride inside the signed packets.
    /// The new factory must keep the P_sign packet last in transmission
    /// order (all §5 designers do), so existing verifiers' index->vertex
    /// mapping stays aligned.
    void set_topology(std::function<DependenceGraph(std::size_t)> topology);

    std::size_t pending() const noexcept { return pending_.size(); }
    std::uint32_t blocks_emitted() const noexcept { return next_block_; }

private:
    std::vector<AuthPacket> cut_block();

    HashChainConfig config_;
    Signer& signer_;
    StreamingOptions options_;
    std::vector<std::vector<std::uint8_t>> pending_;
    double oldest_pending_time_ = 0.0;
    std::uint32_t next_block_ = 0;
};

class StreamingVerifier {
public:
    StreamingVerifier(HashChainConfig config, std::unique_ptr<SignatureVerifier> verifier);

    /// Route a packet by its declared block geometry.
    std::vector<VerifyEvent> on_packet(const AuthPacket& packet);

    /// Close one block (by id) across all geometries — the streaming analog
    /// of HashChainReceiver::finish_block, used by the adaptive session to
    /// drain per-block state as soon as the sender moves on.
    std::vector<VerifyEvent> finish_block(std::uint32_t block_id);

    /// Close all open blocks across all geometries.
    std::vector<VerifyEvent> finish_all();

    std::size_t buffered_packets() const;

private:
    HashChainReceiver& receiver_for(std::size_t block_size);

    HashChainConfig config_;
    std::shared_ptr<SignatureVerifier> verifier_;
    std::map<std::size_t, std::unique_ptr<HashChainReceiver>> by_size_;
};

}  // namespace mcauth

// Wong–Lam authentication tree codec [7].
//
// Per block: a Merkle tree is built over the packet digests and the root is
// signed once. Every packet carries its own authentication path (the
// sibling digests up the tree) plus the root signature, so each packet is
// individually verifiable the moment it arrives — q_i == 1 under any loss
// pattern, zero receiver delay, at the price of (signature + log2 n hashes)
// of overhead in *every* packet. This is the overhead-heavy corner of the
// paper's design-tradeoff space (Figs. 8 and 10).
//
// The tree arity is configurable (Wong–Lam's degree parameter): arity k
// gives ceil(log_k n) proof levels of up to k-1 digests each — k = 2
// minimizes proof BYTES, larger k minimizes the number of HASH evaluations
// per verification (fewer levels), the tradeoff the original paper tunes.
//
// Wire mapping: the Merkle path rides in AuthPacket::hashes, one entry per
// proof level in bottom-up order (target = the node's position within its
// sibling group, digest = the concatenated ordered siblings of that
// group); the root signature rides in AuthPacket::signature.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "auth/hash_chain_scheme.hpp"  // VerifyEvent / VerifyStatus
#include "auth/packet.hpp"
#include "crypto/merkle.hpp"
#include "crypto/signature.hpp"

namespace mcauth {

struct TreeSchemeConfig {
    std::size_t block_size = 64;
    std::size_t hash_bytes = 16;  // reserved; path digests stay full-length
    std::size_t arity = 2;        // Wong–Lam tree degree
};

class TreeSender {
public:
    TreeSender(TreeSchemeConfig config, Signer& signer);

    std::vector<AuthPacket> make_block(std::uint32_t block_id,
                                       const std::vector<std::vector<std::uint8_t>>& payloads);

    const TreeSchemeConfig& config() const noexcept { return config_; }

private:
    TreeSchemeConfig config_;
    Signer& signer_;
    PacketArena arena_;  // recycled per block for leaf identity staging
};

class TreeReceiver {
public:
    TreeReceiver(TreeSchemeConfig config, std::unique_ptr<SignatureVerifier> verifier);

    /// Stateless per packet: verdict is immediate (authenticated/rejected).
    VerifyEvent on_packet(const AuthPacket& packet) const;

    /// Block-granular path: verdicts identical to on_packet on each element,
    /// but leaf hashing is batched and the replicated root signature is
    /// verified once per distinct (block, root, signature) statement instead
    /// of once per packet. Not thread-safe (recycles an internal arena).
    std::vector<VerifyEvent> on_block(std::span<const AuthPacket> packets) const;

    const TreeSchemeConfig& config() const noexcept { return config_; }

private:
    bool parse_proof(const AuthPacket& packet, KaryMerkleProof& proof) const;

    TreeSchemeConfig config_;
    std::unique_ptr<SignatureVerifier> verifier_;
    mutable PacketArena arena_;  // recycled per on_block call
};

}  // namespace mcauth

#include "auth/tree_scheme.hpp"

#include <cstring>

#include "util/check.hpp"

namespace mcauth {

namespace {

// The leaf commits to (block, index, payload) — the packet's identity
// without its own authentication material (which would be circular).
std::vector<std::uint8_t> leaf_bytes(std::uint32_t block_id, std::uint32_t index,
                                     const std::vector<std::uint8_t>& payload) {
    AuthPacket identity;
    identity.block_id = block_id;
    identity.index = index;
    identity.kind = PacketKind::kData;
    identity.payload = payload;
    return identity.authenticated_bytes();
}

// The signed statement: Merkle root bound to the block id.
std::vector<std::uint8_t> signed_bytes(std::uint32_t block_id, const Digest256& root) {
    std::vector<std::uint8_t> msg(root.begin(), root.end());
    for (int b = 0; b < 4; ++b) msg.push_back(static_cast<std::uint8_t>(block_id >> (8 * b)));
    return msg;
}

}  // namespace

TreeSender::TreeSender(TreeSchemeConfig config, Signer& signer)
    : config_(config), signer_(signer) {
    MCAUTH_EXPECTS(config_.block_size >= 2);
    MCAUTH_EXPECTS(config_.arity >= 2 && config_.arity <= 255);
}

std::vector<AuthPacket> TreeSender::make_block(
    std::uint32_t block_id, const std::vector<std::vector<std::uint8_t>>& payloads) {
    MCAUTH_EXPECTS(payloads.size() == config_.block_size);
    const std::size_t n = config_.block_size;

    std::vector<Digest256> leaves;
    leaves.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        leaves.push_back(MerkleTree::hash_leaf(
            leaf_bytes(block_id, static_cast<std::uint32_t>(i), payloads[i])));
    const KaryMerkleTree tree(std::move(leaves), config_.arity);

    // One signature amortized over the block — but unlike hash chaining it
    // is REPLICATED into every packet, which is where the overhead goes.
    const auto signature = signer_.sign(signed_bytes(block_id, tree.root()));

    std::vector<AuthPacket> packets(n);
    for (std::size_t i = 0; i < n; ++i) {
        AuthPacket& pkt = packets[i];
        pkt.block_id = block_id;
        pkt.index = static_cast<std::uint32_t>(i);
        pkt.block_size = static_cast<std::uint32_t>(n);
        pkt.kind = PacketKind::kData;
        pkt.payload = payloads[i];
        const KaryMerkleProof proof = tree.prove(i);
        for (const KaryProofStep& step : proof.steps) {
            // One HashRef per level: target = our position in the sibling
            // group, digest = the ordered siblings concatenated. Digests
            // stay full-length — a truncated interior node cannot be
            // recombined into the root.
            HashRef ref;
            ref.target = step.position;
            ref.digest.reserve(step.siblings.size() * sizeof(Digest256));
            for (const Digest256& sibling : step.siblings)
                ref.digest.insert(ref.digest.end(), sibling.begin(), sibling.end());
            pkt.hashes.push_back(std::move(ref));
        }
        pkt.signature = signature;
    }
    return packets;
}

TreeReceiver::TreeReceiver(TreeSchemeConfig config,
                           std::unique_ptr<SignatureVerifier> verifier)
    : config_(config), verifier_(std::move(verifier)) {
    MCAUTH_EXPECTS(verifier_ != nullptr);
}

VerifyEvent TreeReceiver::on_packet(const AuthPacket& packet) const {
    VerifyEvent event{packet.block_id, packet.index, VerifyStatus::kRejected};

    KaryMerkleProof proof;
    proof.leaf_index = packet.index;
    proof.steps.reserve(packet.hashes.size());
    for (const HashRef& ref : packet.hashes) {
        KaryProofStep step;
        if (ref.digest.empty() || ref.digest.size() % sizeof(Digest256) != 0)
            return event;  // malformed
        const std::size_t sibling_count = ref.digest.size() / sizeof(Digest256);
        if (sibling_count >= config_.arity) return event;  // group too large
        step.position = ref.target;
        step.siblings.resize(sibling_count);
        for (std::size_t s = 0; s < sibling_count; ++s)
            std::memcpy(step.siblings[s].data(), ref.digest.data() + s * sizeof(Digest256),
                        sizeof(Digest256));
        proof.steps.push_back(std::move(step));
    }

    const Digest256 leaf =
        MerkleTree::hash_leaf(leaf_bytes(packet.block_id, packet.index, packet.payload));
    const Digest256 root = KaryMerkleTree::root_from_proof(leaf, proof);
    if (verifier_->verify(signed_bytes(packet.block_id, root), packet.signature))
        event.status = VerifyStatus::kAuthenticated;
    return event;
}

}  // namespace mcauth

#include "auth/tree_scheme.hpp"

#include <cstring>

#include "util/check.hpp"

namespace mcauth {

namespace {

// The leaf commits to (block, index, payload) — the packet's identity
// without its own authentication material (which would be circular).
std::vector<std::uint8_t> leaf_bytes(std::uint32_t block_id, std::uint32_t index,
                                     const std::vector<std::uint8_t>& payload) {
    AuthPacket identity;
    identity.block_id = block_id;
    identity.index = index;
    identity.kind = PacketKind::kData;
    identity.payload = payload;
    return identity.authenticated_bytes();
}

// The signed statement: Merkle root bound to the block id.
std::vector<std::uint8_t> signed_bytes(std::uint32_t block_id, const Digest256& root) {
    std::vector<std::uint8_t> msg(root.begin(), root.end());
    for (int b = 0; b < 4; ++b) msg.push_back(static_cast<std::uint8_t>(block_id >> (8 * b)));
    return msg;
}

}  // namespace

TreeSender::TreeSender(TreeSchemeConfig config, Signer& signer)
    : config_(config), signer_(signer) {
    MCAUTH_EXPECTS(config_.block_size >= 2);
    MCAUTH_EXPECTS(config_.arity >= 2 && config_.arity <= 255);
}

std::vector<AuthPacket> TreeSender::make_block(
    std::uint32_t block_id, const std::vector<std::vector<std::uint8_t>>& payloads) {
    MCAUTH_EXPECTS(payloads.size() == config_.block_size);
    const std::size_t n = config_.block_size;

    // Stage every leaf's identity bytes in the arena (no per-packet vector
    // churn), then hash the whole set through the multi-buffer hasher.
    arena_.reset();
    std::vector<HashInput> leaf_inputs;
    leaf_inputs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        leaf_inputs.emplace_back(encode_data_identity(arena_, block_id,
                                                      static_cast<std::uint32_t>(i),
                                                      payloads[i]));
    std::vector<Digest256> leaves(n);
    MerkleTree::hash_leaves(leaf_inputs.data(), n, leaves.data());
    const KaryMerkleTree tree(std::move(leaves), config_.arity);

    // One signature amortized over the block — but unlike hash chaining it
    // is REPLICATED into every packet, which is where the overhead goes.
    const auto signature = signer_.sign(signed_bytes(block_id, tree.root()));

    std::vector<AuthPacket> packets(n);
    for (std::size_t i = 0; i < n; ++i) {
        AuthPacket& pkt = packets[i];
        pkt.block_id = block_id;
        pkt.index = static_cast<std::uint32_t>(i);
        pkt.block_size = static_cast<std::uint32_t>(n);
        pkt.kind = PacketKind::kData;
        pkt.payload = payloads[i];
        const KaryMerkleProof proof = tree.prove(i);
        for (const KaryProofStep& step : proof.steps) {
            // One HashRef per level: target = our position in the sibling
            // group, digest = the ordered siblings concatenated. Digests
            // stay full-length — a truncated interior node cannot be
            // recombined into the root.
            HashRef ref;
            ref.target = step.position;
            ref.digest.reserve(step.siblings.size() * sizeof(Digest256));
            for (const Digest256& sibling : step.siblings)
                ref.digest.insert(ref.digest.end(), sibling.begin(), sibling.end());
            pkt.hashes.push_back(std::move(ref));
        }
        pkt.signature = signature;
    }
    return packets;
}

TreeReceiver::TreeReceiver(TreeSchemeConfig config,
                           std::unique_ptr<SignatureVerifier> verifier)
    : config_(config), verifier_(std::move(verifier)) {
    MCAUTH_EXPECTS(verifier_ != nullptr);
}

bool TreeReceiver::parse_proof(const AuthPacket& packet, KaryMerkleProof& proof) const {
    proof.leaf_index = packet.index;
    proof.steps.clear();
    proof.steps.reserve(packet.hashes.size());
    for (const HashRef& ref : packet.hashes) {
        KaryProofStep step;
        if (ref.digest.empty() || ref.digest.size() % sizeof(Digest256) != 0)
            return false;  // malformed
        const std::size_t sibling_count = ref.digest.size() / sizeof(Digest256);
        if (sibling_count >= config_.arity) return false;  // group too large
        step.position = ref.target;
        step.siblings.resize(sibling_count);
        for (std::size_t s = 0; s < sibling_count; ++s)
            std::memcpy(step.siblings[s].data(), ref.digest.data() + s * sizeof(Digest256),
                        sizeof(Digest256));
        proof.steps.push_back(std::move(step));
    }
    return true;
}

VerifyEvent TreeReceiver::on_packet(const AuthPacket& packet) const {
    VerifyEvent event{packet.block_id, packet.index, VerifyStatus::kRejected};

    KaryMerkleProof proof;
    if (!parse_proof(packet, proof)) return event;

    const Digest256 leaf =
        MerkleTree::hash_leaf(leaf_bytes(packet.block_id, packet.index, packet.payload));
    const Digest256 root = KaryMerkleTree::root_from_proof(leaf, proof);
    if (verifier_->verify(signed_bytes(packet.block_id, root), packet.signature))
        event.status = VerifyStatus::kAuthenticated;
    return event;
}

std::vector<VerifyEvent> TreeReceiver::on_block(std::span<const AuthPacket> packets) const {
    std::vector<VerifyEvent> events;
    events.reserve(packets.size());
    for (const AuthPacket& pkt : packets)
        events.push_back({pkt.block_id, pkt.index, VerifyStatus::kRejected});

    // Pass 1: parse proofs and batch-hash every well-formed packet's leaf
    // commitment through the multi-buffer hasher.
    arena_.reset();
    std::vector<KaryMerkleProof> proofs(packets.size());
    std::vector<char> well_formed(packets.size(), 0);
    std::vector<HashInput> leaf_inputs;
    std::vector<std::size_t> leaf_owner;
    for (std::size_t i = 0; i < packets.size(); ++i) {
        if (!parse_proof(packets[i], proofs[i])) continue;
        well_formed[i] = 1;
        leaf_inputs.emplace_back(encode_data_identity(arena_, packets[i].block_id,
                                                      packets[i].index, packets[i].payload));
        leaf_owner.push_back(i);
    }
    std::vector<Digest256> leaves(leaf_inputs.size());
    MerkleTree::hash_leaves(leaf_inputs.data(), leaf_inputs.size(), leaves.data());

    // Pass 2: recombine roots, then verify each DISTINCT (block, root,
    // signature) statement once. A well-formed block replicates one root
    // signature across all n packets, so the public-key work drops from n
    // verifications to one.
    struct Statement {
        std::uint32_t block_id;
        Digest256 root;
        const std::vector<std::uint8_t>* signature;
        bool verdict;
    };
    std::vector<Statement> statements;
    for (std::size_t slot = 0; slot < leaf_owner.size(); ++slot) {
        const std::size_t i = leaf_owner[slot];
        const AuthPacket& pkt = packets[i];
        const Digest256 root = KaryMerkleTree::root_from_proof(leaves[slot], proofs[i]);
        bool verdict = false;
        bool found = false;
        for (const Statement& st : statements) {
            if (st.block_id == pkt.block_id && st.root == root &&
                *st.signature == pkt.signature) {
                verdict = st.verdict;
                found = true;
                break;
            }
        }
        if (!found) {
            verdict = verifier_->verify(signed_bytes(pkt.block_id, root), pkt.signature);
            statements.push_back({pkt.block_id, root, &pkt.signature, verdict});
        }
        if (verdict) events[i].status = VerifyStatus::kAuthenticated;
    }
    return events;
}

}  // namespace mcauth

#include "auth/tesla_scheme.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "crypto/hmac.hpp"
#include "util/check.hpp"

namespace mcauth {

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int b = 0; b < 8; ++b) out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int b = 0; b < 4; ++b) out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

std::uint64_t get_u64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= std::uint64_t(p[b]) << (8 * b);
    return v;
}

std::uint32_t get_u32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) v |= std::uint32_t(p[b]) << (8 * b);
    return v;
}

constexpr double kMicros = 1e6;

// Bootstrap payload: commitment (32) || start_time_us (8) ||
// interval_us (8) || lag (4) || chain_length (4).
constexpr std::size_t kBootstrapPayloadSize = 32 + 8 + 8 + 4 + 4;

struct BootstrapFields {
    TeslaKey commitment{};
    double start_time = 0.0;
    double interval_duration = 0.0;
    std::size_t disclosure_lag = 0;
    std::size_t chain_length = 0;
};

std::optional<BootstrapFields> parse_bootstrap(const std::vector<std::uint8_t>& payload) {
    if (payload.size() != kBootstrapPayloadSize) return std::nullopt;
    BootstrapFields f;
    std::memcpy(f.commitment.data(), payload.data(), 32);
    f.start_time = static_cast<double>(get_u64(payload.data() + 32)) / kMicros;
    f.interval_duration = static_cast<double>(get_u64(payload.data() + 40)) / kMicros;
    f.disclosure_lag = get_u32(payload.data() + 48);
    f.chain_length = get_u32(payload.data() + 52);
    if (f.interval_duration <= 0.0 || f.disclosure_lag == 0 || f.chain_length == 0)
        return std::nullopt;
    return f;
}

}  // namespace

// ------------------------------------------------------------------ sender

TeslaSender::TeslaSender(TeslaConfig config, Signer& signer, Rng& rng, double start_time)
    : config_(config),
      signer_(signer),
      start_time_(start_time),
      chain_(rng.bytes(32), config.chain_length) {
    MCAUTH_EXPECTS(config_.interval_duration > 0.0);
    MCAUTH_EXPECTS(config_.disclosure_lag >= 1);
    MCAUTH_EXPECTS(config_.chain_length >= 1);
    MCAUTH_EXPECTS(config_.mac_bytes >= 8 && config_.mac_bytes <= 32);
    MCAUTH_EXPECTS(start_time >= 0.0);
}

std::size_t TeslaSender::interval_of(double send_time) const {
    MCAUTH_EXPECTS(send_time >= start_time_);
    const auto interval = static_cast<std::size_t>(
                              std::floor((send_time - start_time_) / config_.interval_duration)) +
                          1;
    return interval;
}

AuthPacket TeslaSender::bootstrap() const {
    AuthPacket pkt;
    pkt.kind = PacketKind::kBootstrap;
    pkt.index = 0;
    pkt.payload.reserve(kBootstrapPayloadSize);
    const TeslaKey& commitment = chain_.commitment();
    pkt.payload.insert(pkt.payload.end(), commitment.begin(), commitment.end());
    put_u64(pkt.payload, static_cast<std::uint64_t>(start_time_ * kMicros));
    put_u64(pkt.payload, static_cast<std::uint64_t>(config_.interval_duration * kMicros));
    put_u32(pkt.payload, static_cast<std::uint32_t>(config_.disclosure_lag));
    put_u32(pkt.payload, static_cast<std::uint32_t>(config_.chain_length));
    pkt.signature = signer_.sign(pkt.authenticated_bytes());
    return pkt;
}

AuthPacket TeslaSender::make_packet(std::vector<std::uint8_t> payload, double send_time) {
    const std::size_t interval = interval_of(send_time);
    if (interval > config_.chain_length)
        throw std::runtime_error("TeslaSender: key chain exhausted for this stream");

    AuthPacket pkt;
    pkt.kind = PacketKind::kData;
    pkt.index = next_index_++;
    pkt.payload = std::move(payload);
    pkt.mac_interval = static_cast<std::uint32_t>(interval);

    const TeslaKey mac_key = chain_.mac_key(interval);
    const Digest256 mac = hmac_sha256(mac_key, pkt.authenticated_bytes());
    pkt.mac = truncate_digest(mac, config_.mac_bytes);

    if (interval > config_.disclosure_lag) {
        const std::size_t disclosed = interval - config_.disclosure_lag;
        pkt.disclosed_interval = static_cast<std::uint32_t>(disclosed);
        const TeslaKey& key = chain_.key(disclosed);
        pkt.disclosed_key.assign(key.begin(), key.end());
    }
    return pkt;
}

std::vector<AuthPacket> TeslaSender::make_packets(
    std::vector<std::vector<std::uint8_t>> payloads, std::span<const double> send_times) {
    MCAUTH_EXPECTS(payloads.size() == send_times.size());
    const std::size_t n = payloads.size();

    // All-or-nothing: reject a chain-exhausting burst before consuming any
    // packet index, so a caught throw leaves the sender reusable.
    std::vector<std::size_t> intervals(n);
    for (std::size_t i = 0; i < n; ++i) {
        intervals[i] = interval_of(send_times[i]);
        if (intervals[i] > config_.chain_length)
            throw std::runtime_error("TeslaSender: key chain exhausted for this stream");
    }

    arena_.reset();
    std::vector<AuthPacket> pkts(n);
    std::vector<HashInput> inputs;
    inputs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        AuthPacket& pkt = pkts[i];
        pkt.kind = PacketKind::kData;
        pkt.index = next_index_++;
        pkt.payload = std::move(payloads[i]);
        pkt.mac_interval = static_cast<std::uint32_t>(intervals[i]);
        inputs.emplace_back(pkt.authenticated_bytes_into(arena_));
    }

    // One derived MAC key per interval; each interval's packets go through
    // the multi-buffer HMAC as a single batch.
    std::map<std::size_t, std::vector<std::size_t>> by_interval;
    for (std::size_t i = 0; i < n; ++i) by_interval[intervals[i]].push_back(i);
    std::vector<HashInput> group_inputs;
    std::vector<Digest256> group_macs;
    for (const auto& [interval, members] : by_interval) {
        const TeslaKey mac_key = chain_.mac_key(interval);
        const HmacSha256Key key({mac_key.data(), mac_key.size()});
        group_inputs.clear();
        for (std::size_t i : members) group_inputs.push_back(inputs[i]);
        group_macs.resize(members.size());
        hmac_sha256_many(key, group_inputs.data(), members.size(), group_macs.data());
        for (std::size_t j = 0; j < members.size(); ++j)
            pkts[members[j]].mac = truncate_digest(group_macs[j], config_.mac_bytes);
    }

    // Key disclosure rides outside the MAC'd bytes, so it can be filled in
    // after the batch MAC pass without perturbing the wire image.
    for (std::size_t i = 0; i < n; ++i) {
        if (intervals[i] > config_.disclosure_lag) {
            const std::size_t disclosed = intervals[i] - config_.disclosure_lag;
            pkts[i].disclosed_interval = static_cast<std::uint32_t>(disclosed);
            const TeslaKey& key = chain_.key(disclosed);
            pkts[i].disclosed_key.assign(key.begin(), key.end());
        }
    }
    return pkts;
}

// ---------------------------------------------------------------- receiver

TeslaReceiver::TeslaReceiver(TeslaConfig config, std::unique_ptr<SignatureVerifier> verifier,
                             double max_clock_skew)
    : config_(config),
      signature_verifier_(std::move(verifier)),
      max_clock_skew_(max_clock_skew) {
    MCAUTH_EXPECTS(signature_verifier_ != nullptr);
    MCAUTH_EXPECTS(max_clock_skew >= 0.0);
}

bool TeslaReceiver::on_bootstrap(const AuthPacket& packet) {
    if (packet.kind != PacketKind::kBootstrap) return false;
    if (verifier_state_.has_value()) return true;  // idempotent
    if (!signature_verifier_->verify(packet.authenticated_bytes(), packet.signature))
        return false;
    const auto fields = parse_bootstrap(packet.payload);
    if (!fields) return false;
    // Timing/lag parameters come from the (signed) bootstrap — a mismatch
    // with the locally-configured scheme is a deployment error.
    MCAUTH_REQUIRE(std::abs(fields->interval_duration - config_.interval_duration) < 1e-9);
    MCAUTH_REQUIRE(fields->disclosure_lag == config_.disclosure_lag);
    start_time_ = fields->start_time;
    verifier_state_.emplace(fields->commitment);
    return true;
}

std::vector<VerifyEvent> TeslaReceiver::try_release(std::size_t up_to_interval) {
    std::vector<VerifyEvent> events;
    auto it = buffered_.begin();
    while (it != buffered_.end() && it->first <= up_to_interval) {
        const AuthPacket& pkt = it->second.packet;
        VerifyStatus status = VerifyStatus::kRejected;
        const auto key = verifier_state_->key_for(it->first);
        MCAUTH_ENSURES(key.has_value());
        const TeslaKey mac_key = tesla_mac_key(*key);
        const Digest256 mac = hmac_sha256(mac_key, pkt.authenticated_bytes());
        const auto expected = truncate_digest(mac, config_.mac_bytes);
        if (ct_equal(expected, pkt.mac)) status = VerifyStatus::kAuthenticated;
        events.push_back({pkt.block_id, pkt.index, status});
        it = buffered_.erase(it);
    }
    return events;
}

std::vector<VerifyEvent> TeslaReceiver::on_packet(const AuthPacket& packet,
                                                  double arrival_time) {
    std::vector<VerifyEvent> events;
    if (!verifier_state_.has_value()) return events;  // no bootstrap yet: drop
    if (packet.kind != PacketKind::kData) return events;

    // Disclosed keys are processed even on otherwise-unsafe packets — the
    // key material is public once disclosed and only *advances* trust.
    if (packet.disclosed_interval != 0 &&
        packet.disclosed_key.size() == sizeof(TeslaKey)) {
        TeslaKey key{};
        std::memcpy(key.data(), packet.disclosed_key.data(), key.size());
        if (verifier_state_->accept(packet.disclosed_interval, key)) {
            auto released = try_release(packet.disclosed_interval);
            events.insert(events.end(), released.begin(), released.end());
        }
    }

    // TESLA safety condition: the sender's clock now reads at most
    // arrival_time + skew; the packet is safe only if even that pessimistic
    // sender clock has not reached the interval that discloses its key.
    const std::size_t i = packet.mac_interval;
    if (i == 0) return events;
    const double latest_sender_now = arrival_time + max_clock_skew_;
    const auto latest_sender_interval = static_cast<std::size_t>(std::floor(
                                            (latest_sender_now - start_time_) /
                                            config_.interval_duration)) +
                                        1;
    const bool safe = latest_sender_interval < i + config_.disclosure_lag;
    if (!safe) {
        events.push_back({packet.block_id, packet.index, VerifyStatus::kUnverifiable});
        return events;
    }

    if (i <= verifier_state_->last_index()) {
        // Key already authenticated — but then the packet was necessarily
        // unsafe... unless the key arrived between send and arrival with
        // zero margin. Verify immediately using the held key.
        buffered_.emplace(i, Buffered{packet});
        auto released = try_release(verifier_state_->last_index());
        events.insert(events.end(), released.begin(), released.end());
        return events;
    }

    buffered_.emplace(i, Buffered{packet});
    return events;
}

std::vector<VerifyEvent> TeslaReceiver::finish() {
    std::vector<VerifyEvent> events;
    for (const auto& [interval, buffered] : buffered_)
        events.push_back(
            {buffered.packet.block_id, buffered.packet.index, VerifyStatus::kUnverifiable});
    buffered_.clear();
    return events;
}

}  // namespace mcauth

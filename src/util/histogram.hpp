// Fixed-width histogram with under/overflow bins; used for receiver-delay
// and buffer-occupancy distributions in the simulator.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mcauth {

class Histogram {
public:
    /// Buckets span [lo, hi) in `bins` equal slices; samples outside fall
    /// into dedicated underflow/overflow counters.
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;

    std::size_t total() const noexcept { return total_; }
    std::size_t underflow() const noexcept { return underflow_; }
    std::size_t overflow() const noexcept { return overflow_; }
    std::size_t bin_count(std::size_t i) const;
    double bin_lo(std::size_t i) const;
    double bin_hi(std::size_t i) const;
    std::size_t bins() const noexcept { return counts_.size(); }

    /// Smallest x such that at least fraction q of samples are <= x
    /// (bucket upper edge; underflow maps to lo, overflow to hi).
    double quantile(double q) const;

    /// Multi-line ASCII rendering (for bench/example output).
    std::string render(std::size_t width = 50) const;

private:
    double lo_;
    double hi_;
    double bin_width_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

}  // namespace mcauth

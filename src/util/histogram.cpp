#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace mcauth {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
    MCAUTH_EXPECTS(hi > lo);
    MCAUTH_EXPECTS(bins > 0);
}

void Histogram::add(double x) noexcept {
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
    idx = std::min(idx, counts_.size() - 1);  // guards x just below hi_ with fp rounding
    ++counts_[idx];
}

std::size_t Histogram::bin_count(std::size_t i) const {
    MCAUTH_EXPECTS(i < counts_.size());
    return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
    MCAUTH_EXPECTS(i < counts_.size());
    return lo_ + static_cast<double>(i) * bin_width_;
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + bin_width_; }

double Histogram::quantile(double q) const {
    MCAUTH_EXPECTS(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return lo_;
    const auto target = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(total_)));
    std::size_t seen = underflow_;
    if (seen >= target) return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= target) return bin_hi(i);
    }
    return hi_;
}

std::string Histogram::render(std::size_t width) const {
    std::size_t peak = std::max<std::size_t>(1, *std::max_element(counts_.begin(), counts_.end()));
    std::string out;
    char line[160];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar_len =
            static_cast<std::size_t>(std::llround(static_cast<double>(counts_[i]) /
                                                  static_cast<double>(peak) *
                                                  static_cast<double>(width)));
        std::snprintf(line, sizeof line, "[%10.4g, %10.4g) %8zu |", bin_lo(i), bin_hi(i),
                      counts_[i]);
        out += line;
        out.append(bar_len, '#');
        out += '\n';
    }
    if (underflow_ != 0) {
        std::snprintf(line, sizeof line, "underflow: %zu\n", underflow_);
        out += line;
    }
    if (overflow_ != 0) {
        std::snprintf(line, sizeof line, "overflow: %zu\n", overflow_);
        out += line;
    }
    return out;
}

}  // namespace mcauth

// Streaming and batch statistics used by the simulators and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace mcauth {

/// Numerically stable streaming mean/variance (Welford), plus min/max.
class RunningStats {
public:
    void add(double x) noexcept;

    /// Merge another accumulator (parallel reduction / per-block partials).
    void merge(const RunningStats& other) noexcept;

    std::size_t count() const noexcept { return n_; }
    double mean() const noexcept { return n_ ? mean_ : 0.0; }
    /// Unbiased sample variance; 0 for fewer than two samples.
    double variance() const noexcept;
    double stddev() const noexcept;
    double min() const noexcept { return n_ ? min_ : 0.0; }
    double max() const noexcept { return n_ ? max_ : 0.0; }
    double sum() const noexcept { return mean_ * static_cast<double>(n_); }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Batch quantile over a copy of the sample (nearest-rank with interpolation).
double quantile(std::vector<double> sample, double q);

/// Wilson score interval half-width for a binomial proportion estimate;
/// used to report Monte-Carlo confidence on authentication probabilities.
double wilson_halfwidth(double p_hat, std::size_t n, double z = 1.96);

/// Standard normal CDF Phi(x), via erfc. This is Equation (5) of the paper:
/// the Gaussian approximation to end-to-end network delay.
double normal_cdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, ~1e-9 abs
/// error); used to solve for disclosure delays achieving a target q_min.
double normal_quantile(double p);

}  // namespace mcauth

#include "util/rng.hpp"

#include <cmath>

namespace mcauth {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
    // Seeding through SplitMix64 is the construction recommended by the
    // xoshiro authors: it guarantees a non-zero state and decorrelates
    // consecutive integer seeds.
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256ss::next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

void Xoshiro256ss::jump() noexcept {
    static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                              0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : kJump) {
        for (int bit = 0; bit < 64; ++bit) {
            if (word & (1ULL << bit)) {
                for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= s_[i];
            }
            next();
        }
    }
    s_ = acc;
}

double Rng::uniform() noexcept {
    // Top 53 bits -> [0,1) double, the canonical conversion.
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
        const std::uint64_t r = gen_.next();
        if (r >= threshold) return r % n;
    }
}

bool Rng::bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double Rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box–Muller; u1 is kept away from zero so log() is finite.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
}

double Rng::exponential(double rate) noexcept {
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

std::vector<std::uint8_t> Rng::bytes(std::size_t n) noexcept {
    std::vector<std::uint8_t> out(n);
    std::size_t i = 0;
    while (i + 8 <= n) {
        const std::uint64_t word = gen_.next();
        for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(word >> (8 * b));
    }
    if (i < n) {
        std::uint64_t word = gen_.next();
        while (i < n) {
            out[i++] = static_cast<std::uint8_t>(word);
            word >>= 8;
        }
    }
    return out;
}

Rng Rng::fork() noexcept {
    Rng child(gen_.next());
    return child;
}

}  // namespace mcauth

#include "util/rng.hpp"

#include <cmath>
#include <cstddef>

#if defined(__GNUC__) && defined(__x86_64__)
#define MCAUTH_RNG_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define MCAUTH_RNG_HAVE_AVX2_KERNEL 0
#endif

namespace mcauth {

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
    // (next() lives in the header so hot loops can inline it.)
    // Seeding through SplitMix64 is the construction recommended by the
    // xoshiro authors: it guarantees a non-zero state and decorrelates
    // consecutive integer seeds.
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
}

void Xoshiro256ss::jump() noexcept {
    static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                              0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : kJump) {
        for (int bit = 0; bit < 64; ++bit) {
            if (word & (1ULL << bit)) {
                for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= s_[i];
            }
            next();
        }
    }
    s_ = acc;
}

double Rng::uniform() noexcept {
    // Top 53 bits -> [0,1) double, the canonical conversion.
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
        const std::uint64_t r = gen_.next();
        if (r >= threshold) return r % n;
    }
}

bool Rng::bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double Rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box–Muller; u1 is kept away from zero so log() is finite.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
}

double Rng::exponential(double rate) noexcept {
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

std::vector<std::uint8_t> Rng::bytes(std::size_t n) noexcept {
    std::vector<std::uint8_t> out(n);
    std::size_t i = 0;
    while (i + 8 <= n) {
        const std::uint64_t word = gen_.next();
        for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(word >> (8 * b));
    }
    if (i < n) {
        std::uint64_t word = gen_.next();
        while (i < n) {
            out[i++] = static_cast<std::uint8_t>(word);
            word >>= 8;
        }
    }
    return out;
}

Rng Rng::fork() noexcept {
    Rng child(gen_.next());
    return child;
}

namespace {

/// Portable bulk kernel: two scalar generators interleaved so their serial
/// xoshiro dependency chains overlap (a single chain is latency-bound).
/// Decisions accumulate MSB-first into one register word per lane — no
/// per-draw memory traffic.
void bernoulli_bits64_scalar(Rng* rngs, std::uint64_t threshold, std::size_t count,
                             std::uint64_t* words) noexcept {
    for (std::size_t l = 0; l < 64; l += 2) {
        Rng a = rngs[l];
        Rng b = rngs[l + 1];
        std::uint64_t wa = 0;
        std::uint64_t wb = 0;
        for (std::size_t k = 0; k < count; ++k) {
            // Branchless: a data-dependent `if` here would mispredict at
            // rate min(p, 1-p) per draw and dominate the loop.
            wa = (wa << 1) | static_cast<std::uint64_t>((a.next_u64() >> 11) < threshold);
            wb = (wb << 1) | static_cast<std::uint64_t>((b.next_u64() >> 11) < threshold);
        }
        words[l] = wa;
        words[l + 1] = wb;
        rngs[l] = a;
        rngs[l + 1] = b;
    }
}

}  // namespace

#if MCAUTH_RNG_HAVE_AVX2_KERNEL

/// AVX2 bulk kernel: four generators per 256-bit vector (state transposed
/// to struct-of-arrays in registers), replaying xoshiro256** step-for-step
/// in 64-bit vector integer arithmetic:
///
///   * `* 5` and `* 9` become shift-and-add (AVX2 has no 64-bit multiply);
///   * rotl is a pair of shifts + or;
///   * the threshold compare uses SIGNED vector compare, which is exact
///     here because both operands are < 2^53 (positive in two's
///     complement).
///
/// Every operation is exact integer arithmetic, so the decisions — and the
/// post-call generator states — are bit-identical to the scalar kernel.
__attribute__((target("avx2"))) void Rng::bernoulli_bits64_avx2(
    Rng* rngs, std::uint64_t threshold, std::size_t count,
    std::uint64_t* words) noexcept {
    const __m256i thr = _mm256_set1_epi64x(static_cast<long long>(threshold));
    for (std::size_t l = 0; l < 64; l += 4) {
        auto& g0 = rngs[l].gen_.s_;
        auto& g1 = rngs[l + 1].gen_.s_;
        auto& g2 = rngs[l + 2].gen_.s_;
        auto& g3 = rngs[l + 3].gen_.s_;
        __m256i s0 = _mm256_set_epi64x(static_cast<long long>(g3[0]),
                                       static_cast<long long>(g2[0]),
                                       static_cast<long long>(g1[0]),
                                       static_cast<long long>(g0[0]));
        __m256i s1 = _mm256_set_epi64x(static_cast<long long>(g3[1]),
                                       static_cast<long long>(g2[1]),
                                       static_cast<long long>(g1[1]),
                                       static_cast<long long>(g0[1]));
        __m256i s2 = _mm256_set_epi64x(static_cast<long long>(g3[2]),
                                       static_cast<long long>(g2[2]),
                                       static_cast<long long>(g1[2]),
                                       static_cast<long long>(g0[2]));
        __m256i s3 = _mm256_set_epi64x(static_cast<long long>(g3[3]),
                                       static_cast<long long>(g2[3]),
                                       static_cast<long long>(g1[3]),
                                       static_cast<long long>(g0[3]));
        __m256i w = _mm256_setzero_si256();
        for (std::size_t k = 0; k < count; ++k) {
            // result = rotl(s1 * 5, 7) * 9
            const __m256i x5 = _mm256_add_epi64(_mm256_slli_epi64(s1, 2), s1);
            const __m256i rot =
                _mm256_or_si256(_mm256_slli_epi64(x5, 7), _mm256_srli_epi64(x5, 57));
            const __m256i res = _mm256_add_epi64(_mm256_slli_epi64(rot, 3), rot);
            // hit = (res >> 11) < threshold, as an all-ones/all-zeros mask;
            // >> 63 of the mask is the 0/1 decision bit.
            const __m256i hit = _mm256_cmpgt_epi64(thr, _mm256_srli_epi64(res, 11));
            w = _mm256_or_si256(_mm256_slli_epi64(w, 1), _mm256_srli_epi64(hit, 63));
            // xoshiro state update
            const __m256i t = _mm256_slli_epi64(s1, 17);
            s2 = _mm256_xor_si256(s2, s0);
            s3 = _mm256_xor_si256(s3, s1);
            s1 = _mm256_xor_si256(s1, s2);
            s0 = _mm256_xor_si256(s0, s3);
            s2 = _mm256_xor_si256(s2, t);
            s3 = _mm256_or_si256(_mm256_slli_epi64(s3, 45), _mm256_srli_epi64(s3, 19));
        }
        alignas(32) std::uint64_t back[4][4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(back[0]), s0);
        _mm256_store_si256(reinterpret_cast<__m256i*>(back[1]), s1);
        _mm256_store_si256(reinterpret_cast<__m256i*>(back[2]), s2);
        _mm256_store_si256(reinterpret_cast<__m256i*>(back[3]), s3);
        for (int word = 0; word < 4; ++word) {
            g0[static_cast<std::size_t>(word)] = back[word][0];
            g1[static_cast<std::size_t>(word)] = back[word][1];
            g2[static_cast<std::size_t>(word)] = back[word][2];
            g3[static_cast<std::size_t>(word)] = back[word][3];
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + l), w);
    }
}

#endif  // MCAUTH_RNG_HAVE_AVX2_KERNEL

void Rng::bernoulli_bits64(Rng* rngs, std::uint64_t threshold, std::size_t count,
                           std::uint64_t* words) noexcept {
#if MCAUTH_RNG_HAVE_AVX2_KERNEL
    if (bernoulli_bits64_uses_avx2()) {
        bernoulli_bits64_avx2(rngs, threshold, count, words);
        return;
    }
#endif
    bernoulli_bits64_scalar(rngs, threshold, count, words);
}

bool Rng::bernoulli_bits64_uses_avx2() noexcept {
#if MCAUTH_RNG_HAVE_AVX2_KERNEL
    static const bool have_avx2 = __builtin_cpu_supports("avx2");
    return have_avx2;
#else
    return false;
#endif
}

}  // namespace mcauth

#include "util/cli.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace mcauth {

CliArgs::CliArgs(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        if (arg.rfind("--", 0) != 0) continue;  // ignore positional arguments
        arg.remove_prefix(2);
        // Repeated keys are last-wins (insert_or_assign, not emplace):
        // `--seed 1 --seed 2` means the caller overrode an earlier value —
        // the shell convention, and what scripts prepending defaults expect.
        const auto eq = arg.find('=');
        if (eq != std::string_view::npos) {
            values_.insert_or_assign(std::string(arg.substr(0, eq)),
                                     std::string(arg.substr(eq + 1)));
        } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
            // Space-separated form: `--key value`. A following `--...` token
            // is the next option, so the bare key is a boolean flag instead.
            values_.insert_or_assign(std::string(arg), argv[i + 1]);
            ++i;
        } else {
            values_.insert_or_assign(std::string(arg), "true");
        }
    }
}

bool CliArgs::has(std::string_view key) const { return values_.find(key) != values_.end(); }

std::string CliArgs::get(std::string_view key, std::string fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::move(fallback) : it->second;
}

std::int64_t CliArgs::get_int(std::string_view key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
        return std::stoll(it->second);
    } catch (const std::exception&) {
        throw std::invalid_argument("option --" + std::string(key) + " expects an integer, got '" +
                                    it->second + "'");
    }
}

double CliArgs::get_double(std::string_view key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
        return std::stod(it->second);
    } catch (const std::exception&) {
        throw std::invalid_argument("option --" + std::string(key) + " expects a number, got '" +
                                    it->second + "'");
    }
}

bool CliArgs::get_bool(std::string_view key, bool fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliArgs::keys() const {
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto& [k, v] : values_) out.push_back(k);
    return out;
}

std::vector<std::string> CliArgs::unknown_keys(
    std::span<const std::string_view> known,
    std::span<const std::string_view> known_prefixes) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : values_) {
        bool matched = false;
        for (std::string_view candidate : known) {
            if (k == candidate) {
                matched = true;
                break;
            }
        }
        for (std::string_view prefix : known_prefixes) {
            if (matched) break;
            matched = k.rfind(prefix, 0) == 0;
        }
        if (!matched) out.push_back(k);
    }
    return out;
}

std::string CliArgs::summary() const {
    std::string out;
    for (const auto& [k, v] : values_) {
        out += "--";
        out += k;
        out += '=';
        out += v;
        out += '\n';
    }
    return out;
}

}  // namespace mcauth

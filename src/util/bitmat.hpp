// Bit-matrix kernels shared by the word-parallel engines.
//
// The batched loss samplers (net/loss.cpp) and the population engine
// (pop/population.cpp) both accumulate decisions lane-major — one register
// word per lane — and then need the packet-major view the propagation
// kernels consume. The 64x64 transpose below is that pivot; it lives here
// so both hot paths share one tested implementation.
#pragma once

#include <cstdint>

namespace mcauth {

/// In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3 recursive
/// block-swap; 6 stages of masked swaps, ~400 word ops). This variant maps
/// row r bit c to row 63-c bit 63-r, i.e. transpose across the
/// anti-diagonal; callers compensate by mirroring their row/bit indexing.
inline void transpose64_antidiag(std::uint64_t a[64]) noexcept {
    std::uint64_t m = 0x00000000FFFFFFFFULL;
    for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
        for (int k = 0; k < 64; k = ((k | j) + 1) & ~j) {
            const std::uint64_t t = (a[k] ^ (a[k | j] >> j)) & m;
            a[k] ^= t;
            a[k | j] ^= (t << j);
        }
    }
}

}  // namespace mcauth

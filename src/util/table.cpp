#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace mcauth {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
    MCAUTH_EXPECTS(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
    MCAUTH_EXPECTS(cells.size() == header_.size());
    rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string TablePrinter::num(std::size_t v) { return std::to_string(v); }

std::string TablePrinter::num(int v) { return std::to_string(v); }

std::string TablePrinter::render() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size()) out.append(widths[c] - row[c].size() + 2, ' ');
        }
        out += '\n';
    };

    std::string out;
    emit_row(header_, out);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto& row : rows_) emit_row(row, out);
    return out;
}

void TablePrinter::write_csv(const std::string& path) const {
    std::ofstream file(path);
    MCAUTH_REQUIRE(file.is_open());
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            // Cells are numeric or simple identifiers; quote only if needed.
            const bool needs_quote = row[c].find_first_of(",\"\n") != std::string::npos;
            if (needs_quote) {
                file << '"';
                for (char ch : row[c]) {
                    if (ch == '"') file << '"';
                    file << ch;
                }
                file << '"';
            } else {
                file << row[c];
            }
            if (c + 1 < row.size()) file << ',';
        }
        file << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
}

}  // namespace mcauth

// Deterministic, seedable pseudo-random generators for simulation.
//
// Simulations in this library must be exactly reproducible from a seed, and
// the analytical validation benches draw billions of variates, so we carry
// our own small generators instead of the (implementation-defined)
// distributions in <random>:
//
//   * SplitMix64   - seed expander (Steele, Lea, Flood 2014).
//   * Xoshiro256ss - xoshiro256** 1.0 (Blackman & Vigna 2018); the workhorse.
//
// `Rng` wraps xoshiro with the variate kinds the simulators need. All
// distribution code is written here so results are bit-identical across
// standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mcauth {

/// Seed expander; also usable as a tiny standalone generator.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** 1.0. Passes BigCrush; 2^256-1 period; fast on 64-bit targets.
class Xoshiro256ss {
public:
    using result_type = std::uint64_t;

    explicit Xoshiro256ss(std::uint64_t seed) noexcept;

    /// Defined here (not in rng.cpp) so bulk consumers — the bit-sliced
    /// engine's lane-major samplers draw thousands of variates from a
    /// register-resident local copy — inline the step instead of paying a
    /// call and a state round-trip through memory per draw.
    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// UniformRandomBitGenerator interface so the class composes with <random>.
    std::uint64_t operator()() noexcept { return next(); }
    static constexpr std::uint64_t min() noexcept { return 0; }
    static constexpr std::uint64_t max() noexcept { return ~0ULL; }

    /// Equivalent to 2^128 calls to next(); used to carve independent streams.
    void jump() noexcept;

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    friend class Rng;  // bulk samplers (Rng::bernoulli_bits64) step raw state

    std::array<std::uint64_t, 4> s_{};
};

/// Convenience façade: one generator + the variates the simulators use.
class Rng {
public:
    explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

    std::uint64_t next_u64() noexcept { return gen_.next(); }

    /// Uniform in [0, 1) with 53-bit resolution.
    double uniform() noexcept;

    /// Uniform in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n); n must be > 0. Unbiased (rejection).
    std::uint64_t uniform_below(std::uint64_t n) noexcept;

    /// True with probability p (p clamped to [0,1]).
    bool bernoulli(double p) noexcept;

    /// Standard normal via Box–Muller with caching.
    double normal() noexcept;

    /// Normal with mean mu, standard deviation sigma.
    double normal(double mu, double sigma) noexcept { return mu + sigma * normal(); }

    /// Exponential with given rate (mean 1/rate).
    double exponential(double rate) noexcept;

    /// Random bytes (for keys, payloads).
    std::vector<std::uint8_t> bytes(std::size_t n) noexcept;

    /// Derive an independent child generator (distinct stream).
    Rng fork() noexcept;

    /// Bulk Bernoulli over 64 independent generators: for each lane l and
    /// draw k in [0, count), count <= 64, decide
    ///     (rngs[l].next_u64() >> 11) < threshold
    /// consuming exactly one variate per decision per lane (identical to
    /// what a `uniform() < p` with threshold == ceil(p * 2^53) would
    /// consume and decide, for p in (0,1)). words[l] receives lane l's
    /// decisions packed MSB-first: draw k at bit (count-1-k).
    ///
    /// Dispatches at runtime to an AVX2 kernel (4 generators per vector)
    /// when the CPU has it; the portable fallback interleaves two scalar
    /// generators. Pure integer arithmetic either way, so results are
    /// bit-identical across paths and machines.
    static void bernoulli_bits64(Rng* rngs, std::uint64_t threshold, std::size_t count,
                                 std::uint64_t* words) noexcept;

    /// True when bernoulli_bits64 dispatches to the AVX2 kernel on this
    /// machine (provenance for bench manifests; both paths are
    /// bit-identical, so this never changes results — only throughput).
    static bool bernoulli_bits64_uses_avx2() noexcept;

private:
    /// AVX2 specialization of bernoulli_bits64 (defined, and only
    /// referenced, on x86-64 GCC/Clang builds).
    static void bernoulli_bits64_avx2(Rng* rngs, std::uint64_t threshold,
                                      std::size_t count, std::uint64_t* words) noexcept;

    Xoshiro256ss gen_;
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace mcauth

// Deterministic, seedable pseudo-random generators for simulation.
//
// Simulations in this library must be exactly reproducible from a seed, and
// the analytical validation benches draw billions of variates, so we carry
// our own small generators instead of the (implementation-defined)
// distributions in <random>:
//
//   * SplitMix64   - seed expander (Steele, Lea, Flood 2014).
//   * Xoshiro256ss - xoshiro256** 1.0 (Blackman & Vigna 2018); the workhorse.
//
// `Rng` wraps xoshiro with the variate kinds the simulators need. All
// distribution code is written here so results are bit-identical across
// standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mcauth {

/// Seed expander; also usable as a tiny standalone generator.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** 1.0. Passes BigCrush; 2^256-1 period; fast on 64-bit targets.
class Xoshiro256ss {
public:
    using result_type = std::uint64_t;

    explicit Xoshiro256ss(std::uint64_t seed) noexcept;

    std::uint64_t next() noexcept;

    /// UniformRandomBitGenerator interface so the class composes with <random>.
    std::uint64_t operator()() noexcept { return next(); }
    static constexpr std::uint64_t min() noexcept { return 0; }
    static constexpr std::uint64_t max() noexcept { return ~0ULL; }

    /// Equivalent to 2^128 calls to next(); used to carve independent streams.
    void jump() noexcept;

private:
    std::array<std::uint64_t, 4> s_{};
};

/// Convenience façade: one generator + the variates the simulators use.
class Rng {
public:
    explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

    std::uint64_t next_u64() noexcept { return gen_.next(); }

    /// Uniform in [0, 1) with 53-bit resolution.
    double uniform() noexcept;

    /// Uniform in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n); n must be > 0. Unbiased (rejection).
    std::uint64_t uniform_below(std::uint64_t n) noexcept;

    /// True with probability p (p clamped to [0,1]).
    bool bernoulli(double p) noexcept;

    /// Standard normal via Box–Muller with caching.
    double normal() noexcept;

    /// Normal with mean mu, standard deviation sigma.
    double normal(double mu, double sigma) noexcept { return mu + sigma * normal(); }

    /// Exponential with given rate (mean 1/rate).
    double exponential(double rate) noexcept;

    /// Random bytes (for keys, payloads).
    std::vector<std::uint8_t> bytes(std::size_t n) noexcept;

    /// Derive an independent child generator (distinct stream).
    Rng fork() noexcept;

private:
    Xoshiro256ss gen_;
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace mcauth

// Contract-checking helpers in the spirit of the Core Guidelines' Expects/Ensures.
//
// MCAUTH_EXPECTS  - precondition on a public API; throws std::invalid_argument.
// MCAUTH_ENSURES  - postcondition / internal invariant; throws std::logic_error.
// MCAUTH_REQUIRE  - runtime condition that depends on external input (files,
//                   network, message contents); throws std::runtime_error.
//
// All three are always on: this library's call sites are analysis tools and
// simulators, where a silently-violated invariant poisons every number
// downstream. The cost of a predictable branch is irrelevant next to hashing.
#pragma once

#include <stdexcept>
#include <string>

namespace mcauth {

namespace detail {

[[noreturn]] inline void fail_expects(const char* expr, const char* file, int line) {
    throw std::invalid_argument(std::string("precondition failed: ") + expr + " at " +
                                file + ":" + std::to_string(line));
}

[[noreturn]] inline void fail_ensures(const char* expr, const char* file, int line) {
    throw std::logic_error(std::string("invariant failed: ") + expr + " at " + file + ":" +
                           std::to_string(line));
}

[[noreturn]] inline void fail_require(const char* expr, const char* file, int line) {
    throw std::runtime_error(std::string("requirement failed: ") + expr + " at " + file +
                             ":" + std::to_string(line));
}

}  // namespace detail

}  // namespace mcauth

#define MCAUTH_EXPECTS(cond)                                                 \
    do {                                                                     \
        if (!(cond)) ::mcauth::detail::fail_expects(#cond, __FILE__, __LINE__); \
    } while (false)

#define MCAUTH_ENSURES(cond)                                                 \
    do {                                                                     \
        if (!(cond)) ::mcauth::detail::fail_ensures(#cond, __FILE__, __LINE__); \
    } while (false)

#define MCAUTH_REQUIRE(cond)                                                 \
    do {                                                                     \
        if (!(cond)) ::mcauth::detail::fail_require(#cond, __FILE__, __LINE__); \
    } while (false)

// Minimal JSON document model + recursive-descent parser.
//
// Just enough JSON for the tooling that reads our own machine-readable
// outputs back in (bench_compare parsing BENCH_*.json manifests, tests
// validating exporter output): objects, arrays, strings (with the standard
// escapes incl. \uXXXX for the BMP), numbers, booleans, null. Numbers are
// held as double — our emitters never exceed 53-bit integer precision for
// anything a reader gates on (counts, thread counts, seeds are echoed as
// strings where exactness matters).
//
// Not a serializer: emission stays with the hand-rolled fprintf writers so
// emitted files remain diff-stable; this is the *reading* half only.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mcauth {

class JsonValue {
public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue, std::less<>>;

    /// Parse `text` as a single JSON document (trailing garbage rejected).
    /// On failure returns nullopt and, when `error` is non-null, a one-line
    /// diagnostic with the byte offset.
    static std::optional<JsonValue> parse(std::string_view text,
                                          std::string* error = nullptr);

    Kind kind() const noexcept { return kind_; }
    bool is_null() const noexcept { return kind_ == Kind::kNull; }
    bool is_bool() const noexcept { return kind_ == Kind::kBool; }
    bool is_number() const noexcept { return kind_ == Kind::kNumber; }
    bool is_string() const noexcept { return kind_ == Kind::kString; }
    bool is_array() const noexcept { return kind_ == Kind::kArray; }
    bool is_object() const noexcept { return kind_ == Kind::kObject; }

    bool as_bool(bool fallback = false) const noexcept {
        return is_bool() ? bool_ : fallback;
    }
    double as_double(double fallback = 0.0) const noexcept {
        return is_number() ? number_ : fallback;
    }
    std::int64_t as_int(std::int64_t fallback = 0) const noexcept {
        return is_number() ? static_cast<std::int64_t>(number_) : fallback;
    }
    std::uint64_t as_uint(std::uint64_t fallback = 0) const noexcept {
        return is_number() && number_ >= 0 ? static_cast<std::uint64_t>(number_)
                                           : fallback;
    }
    const std::string& as_string() const noexcept { return string_; }

    const Array& array() const noexcept { return array_; }
    const Object& object() const noexcept { return object_; }

    /// Object member lookup; nullptr when absent or not an object.
    const JsonValue* find(std::string_view key) const noexcept;
    bool has(std::string_view key) const noexcept { return find(key) != nullptr; }

    /// Convenience: member `key` as string/number with fallback when the
    /// member is absent or of the wrong kind.
    std::string get_string(std::string_view key, std::string fallback = "") const;
    double get_double(std::string_view key, double fallback = 0.0) const;
    std::uint64_t get_uint(std::string_view key, std::uint64_t fallback = 0) const;
    bool get_bool(std::string_view key, bool fallback = false) const;

    // Construction (tests and programmatic fixtures).
    JsonValue() = default;
    static JsonValue make_null() { return JsonValue(); }
    static JsonValue make_bool(bool b);
    static JsonValue make_number(double v);
    static JsonValue make_string(std::string s);
    static JsonValue make_array(Array a);
    static JsonValue make_object(Object o);

private:
    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

}  // namespace mcauth

#include "util/hex.hpp"

#include "util/check.hpp"

namespace mcauth {

std::string to_hex(std::span<const std::uint8_t> bytes) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        out += kDigits[b >> 4];
        out += kDigits[b & 0x0f];
    }
    return out;
}

namespace {

int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

}  // namespace

std::vector<std::uint8_t> from_hex(std::string_view hex) {
    MCAUTH_EXPECTS(hex.size() % 2 == 0);
    std::vector<std::uint8_t> out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hex_value(hex[i]);
        const int lo = hex_value(hex[i + 1]);
        MCAUTH_EXPECTS(hi >= 0 && lo >= 0);
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return out;
}

std::vector<std::uint8_t> ascii_bytes(std::string_view s) {
    return {s.begin(), s.end()};
}

}  // namespace mcauth

// Hex encoding/decoding for digests and test vectors.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mcauth {

/// Lowercase hex string of the byte span.
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Parse hex (case-insensitive, even length). Throws std::invalid_argument
/// on malformed input.
std::vector<std::uint8_t> from_hex(std::string_view hex);

/// Bytes of an ASCII string (test-vector convenience).
std::vector<std::uint8_t> ascii_bytes(std::string_view s);

}  // namespace mcauth

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mcauth {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::vector<double> sample, double q) {
    MCAUTH_EXPECTS(!sample.empty());
    MCAUTH_EXPECTS(q >= 0.0 && q <= 1.0);
    std::sort(sample.begin(), sample.end());
    if (sample.size() == 1) return sample.front();
    const double pos = q * static_cast<double>(sample.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sample.size()) return sample.back();
    return sample[lo] * (1.0 - frac) + sample[lo + 1] * frac;
}

double wilson_halfwidth(double p_hat, std::size_t n, double z) {
    if (n == 0) return 1.0;
    const double nn = static_cast<double>(n);
    const double z2 = z * z;
    const double denom = 1.0 + z2 / nn;
    const double spread =
        z * std::sqrt(p_hat * (1.0 - p_hat) / nn + z2 / (4.0 * nn * nn)) / denom;
    return spread;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
    MCAUTH_EXPECTS(p > 0.0 && p < 1.0);
    // Acklam's algorithm: rational approximations on a central region and
    // two tails, then one Halley refinement step off the CDF.
    static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                   -2.759285104469687e+02, 1.383577518672690e+02,
                                   -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                   -1.556989798598866e+02, 6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                   -2.400758277161838e+00, -2.549732539343734e+00,
                                   4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                   2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;
    double x = 0.0;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    // One step of Halley's method sharpens the tail accuracy.
    const double e = normal_cdf(x) - p;
    const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

}  // namespace mcauth

#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace mcauth {

namespace {

class Parser {
public:
    Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

    bool parse_document(JsonValue& out) {
        skip_ws();
        if (!parse_value(out)) return false;
        skip_ws();
        if (pos_ != text_.size()) return fail("trailing characters after document");
        return true;
    }

private:
    bool fail(const std::string& what) {
        if (error_ != nullptr && error_->empty())
            *error_ = what + " at byte " + std::to_string(pos_);
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool consume(char c) {
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != c) return false;
        ++pos_;
        return true;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    bool parse_value(JsonValue& out) {
        skip_ws();
        if (pos_ >= text_.size()) return fail("unexpected end of input");
        switch (text_[pos_]) {
            case '{': return parse_object(out);
            case '[': return parse_array(out);
            case '"': {
                std::string s;
                if (!parse_string(s)) return false;
                out = JsonValue::make_string(std::move(s));
                return true;
            }
            case 't':
                if (!consume_literal("true")) return fail("bad literal");
                out = JsonValue::make_bool(true);
                return true;
            case 'f':
                if (!consume_literal("false")) return fail("bad literal");
                out = JsonValue::make_bool(false);
                return true;
            case 'n':
                if (!consume_literal("null")) return fail("bad literal");
                out = JsonValue::make_null();
                return true;
            default: return parse_number(out);
        }
    }

    bool parse_object(JsonValue& out) {
        if (!consume('{')) return fail("expected '{'");
        JsonValue::Object obj;
        skip_ws();
        if (consume('}')) {
            out = JsonValue::make_object(std::move(obj));
            return true;
        }
        while (true) {
            skip_ws();
            std::string key;
            if (!parse_string(key)) return fail("expected object key");
            if (!consume(':')) return fail("expected ':'");
            JsonValue value;
            if (!parse_value(value)) return false;
            obj.insert_or_assign(std::move(key), std::move(value));
            if (consume(',')) continue;
            if (consume('}')) break;
            return fail("expected ',' or '}'");
        }
        out = JsonValue::make_object(std::move(obj));
        return true;
    }

    bool parse_array(JsonValue& out) {
        if (!consume('[')) return fail("expected '['");
        JsonValue::Array arr;
        skip_ws();
        if (consume(']')) {
            out = JsonValue::make_array(std::move(arr));
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parse_value(value)) return false;
            arr.push_back(std::move(value));
            if (consume(',')) continue;
            if (consume(']')) break;
            return fail("expected ',' or ']'");
        }
        out = JsonValue::make_array(std::move(arr));
        return true;
    }

    void append_utf8(std::string& s, unsigned cp) {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parse_string(std::string& out) {
        if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected '\"'");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) return fail("truncated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
                        else return fail("bad \\u escape");
                    }
                    // Surrogate pairs are not emitted by any of our writers;
                    // map them to U+FFFD rather than erroring.
                    if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
                    append_utf8(out, cp);
                    break;
                }
                default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parse_number(JsonValue& out) {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) return fail("expected value");
        double value = 0.0;
        const auto [ptr, ec] =
            std::from_chars(text_.data() + start, text_.data() + pos_, value);
        if (ec != std::errc{} || ptr != text_.data() + pos_)
            return fail("bad number");
        out = JsonValue::make_number(value);
        return true;
    }

    std::string_view text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text, std::string* error) {
    if (error != nullptr) error->clear();
    JsonValue out;
    Parser parser(text, error);
    if (!parser.parse_document(out)) return std::nullopt;
    return out;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
    if (!is_object()) return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(std::string_view key, std::string fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->is_string() ? v->string_ : std::move(fallback);
}

double JsonValue::get_double(std::string_view key, double fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr ? v->as_double(fallback) : fallback;
}

std::uint64_t JsonValue::get_uint(std::string_view key, std::uint64_t fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr ? v->as_uint(fallback) : fallback;
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr ? v->as_bool(fallback) : fallback;
}

JsonValue JsonValue::make_bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
}

JsonValue JsonValue::make_number(double n) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = n;
    return v;
}

JsonValue JsonValue::make_string(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
}

JsonValue JsonValue::make_array(Array a) {
    JsonValue v;
    v.kind_ = Kind::kArray;
    v.array_ = std::move(a);
    return v;
}

JsonValue JsonValue::make_object(Object o) {
    JsonValue v;
    v.kind_ = Kind::kObject;
    v.object_ = std::move(o);
    return v;
}

}  // namespace mcauth

// Aligned console tables and CSV emission for the figure-reproduction benches.
//
// Every bench prints the series of one paper figure; TablePrinter keeps that
// output stable and diff-able, and CsvWriter mirrors the same rows to a file
// for external plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace mcauth {

class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> header);

    /// Add one row; must match the header arity.
    void add_row(std::vector<std::string> cells);

    /// Convenience: format doubles with fixed precision.
    static std::string num(double v, int precision = 4);
    static std::string num(std::size_t v);
    static std::string num(int v);

    /// Render with column alignment and a separator under the header.
    std::string render() const;

    /// Write the same content as CSV (no alignment padding).
    void write_csv(const std::string& path) const;

    std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcauth

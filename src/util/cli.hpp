// Minimal --key=value / --key value / --flag argument parser for the
// examples and benches.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mcauth {

class CliArgs {
public:
    CliArgs(int argc, const char* const* argv);

    bool has(std::string_view key) const;

    std::string get(std::string_view key, std::string fallback) const;
    std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
    double get_double(std::string_view key, double fallback) const;
    bool get_bool(std::string_view key, bool fallback) const;

    /// All keys present on the command line, in sorted order.
    std::vector<std::string> keys() const;

    /// Keys that are neither in `known` nor start with one of
    /// `known_prefixes` — typo detection for harnesses that own the whole
    /// flag surface (a mistyped `--thread=8` should fail loudly, not
    /// silently fall back to a default).
    std::vector<std::string> unknown_keys(
        std::span<const std::string_view> known,
        std::span<const std::string_view> known_prefixes = {}) const;

    /// Formatted list of all parsed options (for --help echoes).
    std::string summary() const;

private:
    std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace mcauth

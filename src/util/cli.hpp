// Minimal --key=value / --key value / --flag argument parser for the
// examples and benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace mcauth {

class CliArgs {
public:
    CliArgs(int argc, const char* const* argv);

    bool has(std::string_view key) const;

    std::string get(std::string_view key, std::string fallback) const;
    std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
    double get_double(std::string_view key, double fallback) const;
    bool get_bool(std::string_view key, bool fallback) const;

    /// Formatted list of all parsed options (for --help echoes).
    std::string summary() const;

private:
    std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace mcauth

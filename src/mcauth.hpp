// Umbrella header: the full public surface of the mcauth library.
//
// Applications (the examples/ programs, downstream experiments) include
// this one header and link the mcauth_* static libraries; internal code
// keeps including the fine-grained module headers so that layering
// violations stay visible in the include lists.
//
// Layering (see DESIGN.md §1) — each group below may only depend on the
// groups above it:
//
//   util    primitives: rng, stats, check, cli, json, table
//   obs     observability: metrics, tracing, manifests, bench gates
//   graph   digraphs + CSR + algorithms + DOT
//   crypto  hashes, HMAC, Merkle/WOTS signatures, RSA
//   exec    thread pool, sharded Monte-Carlo, bit-sliced engine
//   net     loss/delay channel models
//   core    the paper's objects: dependence graphs, q recurrence/exact/MC,
//           TESLA analysis, topology constructors, metrics, serialization
//   design  §5 designers + design-space optimizer
//   auth    runnable schemes behind SchemeSender/SchemeReceiver, streaming
//   adapt   closed-loop adaptive authentication (DESIGN.md §10)
//   sim     end-to-end stream simulator
#pragma once

// util
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/hex.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

// obs
#include "obs/bench_compare.hpp"
#include "obs/clock.hpp"
#include "obs/events.hpp"
#include "obs/expect.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/perfctr.hpp"
#include "obs/progress.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

// graph
#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "graph/digraph.hpp"
#include "graph/dot.hpp"

// crypto
#include "crypto/hmac.hpp"
#include "crypto/keychain.hpp"
#include "crypto/merkle.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"
#include "crypto/wots.hpp"

// exec
#include "exec/bitslice.hpp"
#include "exec/sharded.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"

// net
#include "net/channel.hpp"
#include "net/delay.hpp"
#include "net/loss.hpp"

// core
#include "core/authprob.hpp"
#include "core/delay_analysis.hpp"
#include "core/dependence_graph.hpp"
#include "core/exact_dp.hpp"
#include "core/metrics.hpp"
#include "core/serialize.hpp"
#include "core/tesla.hpp"
#include "core/topologies.hpp"

// design
#include "design/constructors.hpp"
#include "design/optimizer.hpp"
#include "design/service.hpp"

// auth
#include "auth/hash_chain_scheme.hpp"
#include "auth/packet.hpp"
#include "auth/scheme.hpp"
#include "auth/sign_each_scheme.hpp"
#include "auth/stream_auth.hpp"
#include "auth/tesla_scheme.hpp"
#include "auth/tree_scheme.hpp"

// adapt
#include "adapt/controller.hpp"
#include "adapt/estimator.hpp"
#include "adapt/feedback.hpp"
#include "adapt/monitor.hpp"
#include "adapt/session.hpp"

// sim
#include "sim/stream_sim.hpp"

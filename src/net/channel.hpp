// A best-effort channel: loss model + delay model. Packets that survive get
// an arrival timestamp; delivery order is arrival order, so out-of-order
// delivery (which drives TESLA's ξ condition and the random component of
// receiver delay, eq. 4) emerges whenever sampled delays cross.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/delay.hpp"
#include "net/loss.hpp"

namespace mcauth {

class Channel {
public:
    Channel(std::unique_ptr<LossModel> loss, std::unique_ptr<DelayModel> delay);

    /// Transmit one packet at `send_time`; returns the arrival time, or
    /// nullopt if the channel dropped it.
    std::optional<double> transmit(double send_time, Rng& rng);

    void reset() { loss_->reset(); }

    const LossModel& loss() const noexcept { return *loss_; }
    const DelayModel& delay() const noexcept { return *delay_; }

    Channel clone() const { return Channel(loss_->clone(), delay_->clone()); }

private:
    std::unique_ptr<LossModel> loss_;
    std::unique_ptr<DelayModel> delay_;
};

/// Outcome of sending one packet of a paced stream.
struct Delivery {
    std::uint64_t seq = 0;
    double send_time = 0.0;
    double arrival_time = 0.0;  // meaningful only when !lost
    bool lost = false;
};

/// Send `count` packets at a fixed pacing interval through the channel.
/// Returns one entry per packet in *send* order.
std::vector<Delivery> send_paced_stream(Channel& channel, Rng& rng, std::size_t count,
                                        double interval, double start_time = 0.0);

/// Indices of surviving packets sorted by arrival time (the order a receiver
/// actually observes).
std::vector<std::size_t> arrival_order(const std::vector<Delivery>& deliveries);

}  // namespace mcauth

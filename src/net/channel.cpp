#include "net/channel.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace mcauth {

Channel::Channel(std::unique_ptr<LossModel> loss, std::unique_ptr<DelayModel> delay)
    : loss_(std::move(loss)), delay_(std::move(delay)) {
    MCAUTH_EXPECTS(loss_ != nullptr);
    MCAUTH_EXPECTS(delay_ != nullptr);
}

std::optional<double> Channel::transmit(double send_time, Rng& rng) {
    MCAUTH_OBS_COUNT("channel.sent");
    if (loss_->lose_next(rng)) {
        MCAUTH_OBS_COUNT("channel.dropped");
        return std::nullopt;
    }
    MCAUTH_OBS_COUNT("channel.delivered");
    const double delay = delay_->sample(rng);
    // Simulated (not wall-clock) delay, recorded on the ns scale so the
    // histogram layer can be shared with real latencies.
    MCAUTH_OBS_RECORD_NS("channel.delay", delay * 1e9);
    return send_time + delay;
}

std::vector<Delivery> send_paced_stream(Channel& channel, Rng& rng, std::size_t count,
                                        double interval, double start_time) {
    MCAUTH_EXPECTS(interval >= 0.0);
    std::vector<Delivery> deliveries(count);
    for (std::size_t i = 0; i < count; ++i) {
        Delivery& d = deliveries[i];
        d.seq = i;
        d.send_time = start_time + static_cast<double>(i) * interval;
        const auto arrival = channel.transmit(d.send_time, rng);
        d.lost = !arrival.has_value();
        d.arrival_time = arrival.value_or(0.0);
    }
    return deliveries;
}

std::vector<std::size_t> arrival_order(const std::vector<Delivery>& deliveries) {
    std::vector<std::size_t> order;
    order.reserve(deliveries.size());
    for (std::size_t i = 0; i < deliveries.size(); ++i)
        if (!deliveries[i].lost) order.push_back(i);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return deliveries[a].arrival_time < deliveries[b].arrival_time;
    });
    return order;
}

}  // namespace mcauth

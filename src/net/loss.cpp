#include "net/loss.hpp"

#include <cmath>
#include <cstdio>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace mcauth {

// ------------------------------------------------------------ BernoulliLoss

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
    MCAUTH_EXPECTS(p >= 0.0 && p <= 1.0);
}

bool BernoulliLoss::lose_next(Rng& rng) {
    const bool lost = rng.bernoulli(p_);
    if (lost) MCAUTH_OBS_COUNT("net.loss.bernoulli.dropped");
    return lost;
}

std::string BernoulliLoss::name() const {
    char buf[48];
    std::snprintf(buf, sizeof buf, "bernoulli(p=%.3g)", p_);
    return buf;
}

std::unique_ptr<LossModel> BernoulliLoss::clone() const {
    return std::make_unique<BernoulliLoss>(*this);
}

// ------------------------------------------------------- GilbertElliottLoss

GilbertElliottLoss::GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                                       double loss_good, double loss_bad)
    : p_gb_(p_good_to_bad), p_bg_(p_bad_to_good), loss_good_(loss_good), loss_bad_(loss_bad) {
    MCAUTH_EXPECTS(p_gb_ > 0.0 && p_gb_ <= 1.0);
    MCAUTH_EXPECTS(p_bg_ > 0.0 && p_bg_ <= 1.0);
    MCAUTH_EXPECTS(loss_good_ >= 0.0 && loss_good_ <= 1.0);
    MCAUTH_EXPECTS(loss_bad_ >= 0.0 && loss_bad_ <= 1.0);
}

GilbertElliottLoss GilbertElliottLoss::from_rate_and_burst(double loss_rate,
                                                           double mean_burst_length) {
    MCAUTH_EXPECTS(loss_rate > 0.0 && loss_rate < 1.0);
    MCAUTH_EXPECTS(mean_burst_length >= 1.0);
    // With loss_good = 0, loss_bad = 1: stationary loss = pi_bad =
    // p_gb / (p_gb + p_bg) and mean burst = 1 / p_bg.
    const double p_bg = 1.0 / mean_burst_length;
    const double p_gb = loss_rate * p_bg / (1.0 - loss_rate);
    MCAUTH_REQUIRE(p_gb <= 1.0);
    return GilbertElliottLoss(p_gb, p_bg, 0.0, 1.0);
}

bool GilbertElliottLoss::lose_next(Rng& rng) {
    // State transition first, then loss decision in the new state. The
    // order is a convention; stationary behaviour is identical.
    if (in_bad_) {
        if (rng.bernoulli(p_bg_)) in_bad_ = false;
    } else {
        if (rng.bernoulli(p_gb_)) in_bad_ = true;
    }
    const bool lost = rng.bernoulli(in_bad_ ? loss_bad_ : loss_good_);
    if (lost) MCAUTH_OBS_COUNT("net.loss.gilbert_elliott.dropped");
    return lost;
}

void GilbertElliottLoss::reset() { in_bad_ = false; }

double GilbertElliottLoss::stationary_loss_rate() const {
    const double pi_bad = p_gb_ / (p_gb_ + p_bg_);
    return pi_bad * loss_bad_ + (1.0 - pi_bad) * loss_good_;
}

std::string GilbertElliottLoss::name() const {
    char buf[96];
    std::snprintf(buf, sizeof buf, "gilbert-elliott(rate=%.3g, burst=%.3g)",
                  stationary_loss_rate(), mean_burst_length());
    return buf;
}

std::unique_ptr<LossModel> GilbertElliottLoss::clone() const {
    return std::make_unique<GilbertElliottLoss>(*this);
}

// ---------------------------------------------------------------- MarkovLoss

MarkovLoss::MarkovLoss(std::vector<std::vector<double>> transition,
                       std::vector<double> loss_prob, bool stationary_start)
    : transition_(std::move(transition)),
      loss_prob_(std::move(loss_prob)),
      stationary_start_(stationary_start),
      needs_stationary_draw_(stationary_start) {
    MCAUTH_EXPECTS(!loss_prob_.empty());
    MCAUTH_EXPECTS(transition_.size() == loss_prob_.size());
    for (const auto& row : transition_) {
        MCAUTH_EXPECTS(row.size() == loss_prob_.size());
        double sum = 0.0;
        for (double p : row) {
            MCAUTH_EXPECTS(p >= 0.0 && p <= 1.0);
            sum += p;
        }
        MCAUTH_EXPECTS(std::abs(sum - 1.0) < 1e-9);
    }
    for (double p : loss_prob_) MCAUTH_EXPECTS(p >= 0.0 && p <= 1.0);
    if (stationary_start_) stationary_ = stationary_distribution();
}

bool MarkovLoss::lose_next(Rng& rng) {
    if (needs_stationary_draw_) {
        // Draw the pre-stream state from pi; since pi*P = pi the chain is
        // then stationary at every subsequent decision.
        needs_stationary_draw_ = false;
        const double u = rng.uniform();
        double acc = 0.0;
        for (std::size_t s = 0; s < stationary_.size(); ++s) {
            acc += stationary_[s];
            if (u < acc) {
                state_ = s;
                break;
            }
        }
    }
    // Advance the chain by inverse-CDF over the current row.
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t next = loss_prob_.size() - 1;
    for (std::size_t s = 0; s < transition_[state_].size(); ++s) {
        acc += transition_[state_][s];
        if (u < acc) {
            next = s;
            break;
        }
    }
    state_ = next;
    const bool lost = rng.bernoulli(loss_prob_[state_]);
    if (lost) MCAUTH_OBS_COUNT("net.loss.markov.dropped");
    return lost;
}

std::vector<double> MarkovLoss::stationary_distribution() const {
    const std::size_t m = loss_prob_.size();
    std::vector<double> pi(m, 1.0 / static_cast<double>(m));
    std::vector<double> next(m, 0.0);
    for (int iter = 0; iter < 10000; ++iter) {
        std::fill(next.begin(), next.end(), 0.0);
        for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < m; ++j) next[j] += pi[i] * transition_[i][j];
        double diff = 0.0;
        for (std::size_t j = 0; j < m; ++j) diff += std::abs(next[j] - pi[j]);
        pi.swap(next);
        if (diff < 1e-14) break;
    }
    return pi;
}

double MarkovLoss::stationary_loss_rate() const {
    const auto pi = stationary_distribution();
    double rate = 0.0;
    for (std::size_t s = 0; s < pi.size(); ++s) rate += pi[s] * loss_prob_[s];
    return rate;
}

std::string MarkovLoss::name() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "markov(m=%zu, rate=%.3g)", loss_prob_.size(),
                  stationary_loss_rate());
    return buf;
}

std::unique_ptr<LossModel> MarkovLoss::clone() const {
    return std::make_unique<MarkovLoss>(*this);
}

// ----------------------------------------------------------------- TraceLoss

TraceLoss::TraceLoss(std::vector<bool> pattern) : pattern_(std::move(pattern)) {
    MCAUTH_EXPECTS(!pattern_.empty());
}

bool TraceLoss::lose_next(Rng& rng) {
    (void)rng;
    const bool lost = pattern_[position_];
    position_ = (position_ + 1) % pattern_.size();
    if (lost) MCAUTH_OBS_COUNT("net.loss.trace.dropped");
    return lost;
}

double TraceLoss::stationary_loss_rate() const {
    std::size_t lost = 0;
    for (bool l : pattern_) lost += l ? 1 : 0;
    return static_cast<double>(lost) / static_cast<double>(pattern_.size());
}

std::string TraceLoss::name() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "trace(len=%zu, rate=%.3g)", pattern_.size(),
                  stationary_loss_rate());
    return buf;
}

std::unique_ptr<LossModel> TraceLoss::clone() const {
    return std::make_unique<TraceLoss>(*this);
}

std::vector<bool> sample_loss_pattern(LossModel& model, Rng& rng, std::size_t n) {
    model.reset();
    std::vector<bool> pattern(n);
    for (std::size_t i = 0; i < n; ++i) pattern[i] = model.lose_next(rng);
    return pattern;
}

}  // namespace mcauth

#include "net/loss.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <cstdio>

#include "obs/obs.hpp"
#include "util/bitmat.hpp"  // transpose64_antidiag: the lane->packet pivot
#include "util/check.hpp"

namespace mcauth {

namespace {

constexpr std::size_t kLanes = BatchedLossModel::kLanes;

/// How Rng::bernoulli(p) behaves, precomputed once per probability so bulk
/// loops stay pure integer work: p <= 0 and p >= 1 consume NO variate and
/// return a constant; anything else consumes one variate and compares the
/// top 53 bits against an exact integer threshold. The threshold identity
///   u < p  <=>  (x >> 11) < ceil(p * 2^53)
/// is the same one BatchedBernoulliLoss::sample_block documents.
struct BernoulliMode {
    bool draws;
    bool constant;  // result when draws == false
    std::uint64_t threshold;

    static BernoulliMode of(double p) noexcept {
        if (p <= 0.0) return {false, false, 0};
        if (p >= 1.0) return {false, true, 0};
        return {true, false, static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53))};
    }
};

// ------------------------------------------------------- batched samplers
//
// Each sampler must consume, per lane, exactly the variates the scalar
// lose_next consumes from the same Rng (test_net's lane-vs-scalar
// equivalence suite pins this). Obs drop counters accumulate popcounts, so
// counter totals also match the scalar engine's per-drop increments.

/// Correctness-by-construction fallback: 64 independent clones. Any
/// LossModel subclass — including ones defined outside this library — gets
/// this for free; it is also the reference the specialized samplers are
/// tested against.
class CloneFanoutBatchedLoss final : public BatchedLossModel {
public:
    explicit CloneFanoutBatchedLoss(const LossModel& proto) {
        for (auto& lane : lanes_) lane = proto.clone();
        reset();
    }

    void reset() override {
        for (auto& lane : lanes_) lane->reset();
    }

    std::uint64_t lose_next64(Rng* lane_rngs) override {
        std::uint64_t lost = 0;
        for (std::size_t l = 0; l < kLanes; ++l)
            lost |= static_cast<std::uint64_t>(lanes_[l]->lose_next(lane_rngs[l])) << l;
        return lost;
    }

private:
    std::array<std::unique_ptr<LossModel>, kLanes> lanes_;
};

/// Stateless i.i.d. lanes; the inner loop inlines Rng::bernoulli's exact
/// arithmetic (top-53-bit uniform < p) because this is the innermost loop
/// of the bit-sliced engine's headline workload. The p <= 0 / p >= 1
/// short-circuits consume no variate, same as Rng::bernoulli.
class BatchedBernoulliLoss final : public BatchedLossModel {
public:
    explicit BatchedBernoulliLoss(double p) : p_(p) {}

    void reset() override {}

    std::uint64_t lose_next64(Rng* lane_rngs) override {
        if (p_ <= 0.0) return 0;
        std::uint64_t lost = 0;
        if (p_ >= 1.0) {
            lost = ~0ULL;
        } else {
            for (std::size_t l = 0; l < kLanes; ++l) {
                const double u =
                    static_cast<double>(lane_rngs[l].next_u64() >> 11) * 0x1.0p-53;
                lost |= static_cast<std::uint64_t>(u < p_) << l;
            }
        }
        MCAUTH_OBS_COUNT_N("net.loss.bernoulli.dropped", std::popcount(lost));
        return lost;
    }

    /// Lane-major bulk path: each lane's generator is copied into a local
    /// (register-resident — its address never escapes, so the compiler can
    /// keep the xoshiro state out of memory) and drawn `count` times before
    /// moving to the next lane. Per-lane draw order is packet-ascending,
    /// identical to the packet-major loop above, so results are
    /// bit-identical — only the lane/packet loop nest is interchanged.
    ///
    /// The compare uses an exact integer threshold instead of a double
    /// compare: with m = x >> 11 (so u = m * 2^-53 exactly — m < 2^53 and
    /// power-of-two scaling is lossless) and T = ceil(p * 2^53) (also exact:
    /// p * 2^53 is a lossless scaling of p's significand),
    ///   u < p  <=>  m < p * 2^53  <=>  m < T
    /// both when p * 2^53 is an integer (then T equals it) and when it is
    /// not (then m < p * 2^53 <=> m <= floor <=> m < ceil).
    void sample_block(Rng* lane_rngs, std::uint64_t* out, std::size_t count) override {
        if (p_ <= 0.0) {
            for (std::size_t k = 0; k < count; ++k) out[k] = 0;
            return;
        }
        if (p_ >= 1.0) {
            for (std::size_t k = 0; k < count; ++k) out[k] = ~0ULL;
            MCAUTH_OBS_COUNT_N("net.loss.bernoulli.dropped", kLanes * count);
            return;
        }
        const std::uint64_t threshold =
            static_cast<std::uint64_t>(std::ceil(p_ * 0x1.0p53));
        // Packets are processed in chunks of 64 so each lane's decisions
        // accumulate into ONE register word (no per-draw memory write at
        // all); a 64x64 bit transpose then flips the chunk from lane-major
        // to packet-major. Lane l is written to row 63-l with packet k at
        // bit 63-k, so the anti-diagonal transpose lands packet k's word at
        // row k with lane l at bit l — `out` convention exactly.
        std::size_t done = 0;
        while (done < count) {
            const std::size_t chunk = count - done < 64 ? count - done : 64;
            std::uint64_t words[kLanes];
            Rng::bernoulli_bits64(lane_rngs, threshold, chunk, words);
            // Mirror for the anti-diagonal transpose: lane l to row 63-l,
            // packet k to bit 63-k (the kernel packs MSB-first, so a ragged
            // chunk just needs a slide; the vacated low bits are zero-filled
            // ghosts). The transpose then lands packet k's word at row k
            // with lane l at bit l — `out` convention exactly.
            std::uint64_t lane_bits[kLanes];
            for (std::size_t l = 0; l < kLanes; ++l)
                lane_bits[63 - l] = words[l] << (64 - chunk);
            transpose64_antidiag(lane_bits);
            for (std::size_t k = 0; k < chunk; ++k) out[done + k] = lane_bits[k];
            done += chunk;
        }
#if MCAUTH_OBS_ENABLED
        // The popcount reduction itself hides behind the runtime switch —
        // it is per-batch work that only exists to feed the counter.
        if (obs::enabled()) {
            std::size_t dropped = 0;
            for (std::size_t k = 0; k < count; ++k) dropped += std::popcount(out[k]);
            MCAUTH_OBS_COUNT_N("net.loss.bernoulli.dropped", dropped);
        }
#endif
    }

private:
    double p_;
};

/// Per-lane Good/Bad state packed into one word; transitions and loss
/// decisions replay GilbertElliottLoss::lose_next per lane (including
/// Rng::bernoulli's no-draw edge cases for probabilities 0 and 1, which are
/// the common loss_good/loss_bad values).
class BatchedGilbertElliottLoss final : public BatchedLossModel {
public:
    BatchedGilbertElliottLoss(double p_gb, double p_bg, double loss_good, double loss_bad)
        : p_gb_(p_gb), p_bg_(p_bg), loss_good_(loss_good), loss_bad_(loss_bad) {}

    void reset() override { in_bad_ = 0; }

    std::uint64_t lose_next64(Rng* lane_rngs) override {
        std::uint64_t lost = 0;
        for (std::size_t l = 0; l < kLanes; ++l) {
            Rng& rng = lane_rngs[l];
            const std::uint64_t bit = 1ULL << l;
            if (in_bad_ & bit) {
                if (rng.bernoulli(p_bg_)) in_bad_ &= ~bit;
            } else {
                if (rng.bernoulli(p_gb_)) in_bad_ |= bit;
            }
            lost |= static_cast<std::uint64_t>(
                        rng.bernoulli((in_bad_ & bit) ? loss_bad_ : loss_good_))
                    << l;
        }
        MCAUTH_OBS_COUNT_N("net.loss.gilbert_elliott.dropped", std::popcount(lost));
        return lost;
    }

    /// Lane-major bulk path, same shape as the Bernoulli one: each lane's
    /// generator and state bit live in locals across the whole chunk, and a
    /// 64x64 transpose pivots the chunk to packet-major. The scalar replay
    /// per packet is: one transition draw picked by the CURRENT state, then
    /// a loss draw in the NEW state; collapsing every probability to a
    /// BernoulliMode up front preserves exactly that variate consumption
    /// (including the no-draw 0/1 edge cases) while making the loop body
    /// integer-only. The common channel (loss_good = 0, loss_bad = 1, both
    /// transitions in (0,1) — what from_rate_and_burst builds) gets a
    /// dedicated loop whose body is one draw, one select and a shift.
    void sample_block(Rng* lane_rngs, std::uint64_t* out, std::size_t count) override {
        const BernoulliMode gb = BernoulliMode::of(p_gb_);
        const BernoulliMode bg = BernoulliMode::of(p_bg_);
        const BernoulliMode lg = BernoulliMode::of(loss_good_);
        const BernoulliMode lb = BernoulliMode::of(loss_bad_);
        const bool hot = gb.draws && bg.draws && !lg.draws && !lg.constant &&
                         !lb.draws && lb.constant;
        std::size_t done = 0;
        while (done < count) {
            const std::size_t chunk = count - done < 64 ? count - done : 64;
            std::uint64_t lane_bits[kLanes];
            for (std::size_t l = 0; l < kLanes; ++l) {
                Rng gen = lane_rngs[l];  // local copy: state stays in registers
                std::uint64_t bad = (in_bad_ >> l) & 1;
                std::uint64_t bits = 0;
                if (hot) {
                    // lost == in Bad state; the transition draw is the only
                    // variate, and branchless selects keep the loop tight.
                    for (std::size_t k = 0; k < chunk; ++k) {
                        const std::uint64_t t = bad ? bg.threshold : gb.threshold;
                        bad ^= static_cast<std::uint64_t>((gen.next_u64() >> 11) < t);
                        bits = (bits << 1) | bad;
                    }
                } else {
                    for (std::size_t k = 0; k < chunk; ++k) {
                        const BernoulliMode& trans = bad ? bg : gb;
                        if (trans.draws ? (gen.next_u64() >> 11) < trans.threshold
                                        : trans.constant)
                            bad ^= 1;
                        const BernoulliMode& loss = bad ? lb : lg;
                        const bool lost =
                            loss.draws ? (gen.next_u64() >> 11) < loss.threshold
                                       : loss.constant;
                        bits = (bits << 1) | static_cast<std::uint64_t>(lost);
                    }
                }
                lane_rngs[l] = gen;
                in_bad_ = (in_bad_ & ~(1ULL << l)) | (bad << l);
                // Mirror for the anti-diagonal transpose (see the Bernoulli
                // sampler): lane l to row 63-l, packet k to bit 63-k.
                lane_bits[63 - l] = bits << (64 - chunk);
            }
            transpose64_antidiag(lane_bits);
            for (std::size_t k = 0; k < chunk; ++k) out[done + k] = lane_bits[k];
            done += chunk;
        }
#if MCAUTH_OBS_ENABLED
        if (obs::enabled()) {
            std::size_t dropped = 0;
            for (std::size_t k = 0; k < count; ++k) dropped += std::popcount(out[k]);
            MCAUTH_OBS_COUNT_N("net.loss.gilbert_elliott.dropped", dropped);
        }
#endif
    }

private:
    double p_gb_;
    double p_bg_;
    double loss_good_;
    double loss_bad_;
    std::uint64_t in_bad_ = 0;
};

/// Per-lane chain state in a flat array; the optional stationary pre-draw
/// and the inverse-CDF row walk replay MarkovLoss::lose_next per lane.
class BatchedMarkovLoss final : public BatchedLossModel {
public:
    BatchedMarkovLoss(std::vector<std::vector<double>> transition,
                      std::vector<double> loss_prob, bool stationary_start,
                      std::vector<double> stationary)
        : transition_(std::move(transition)),
          loss_prob_(std::move(loss_prob)),
          stationary_start_(stationary_start),
          stationary_(std::move(stationary)) {
        reset();
    }

    void reset() override {
        state_.fill(0);
        needs_stationary_ = stationary_start_ ? ~0ULL : 0;
    }

    std::uint64_t lose_next64(Rng* lane_rngs) override {
        std::uint64_t lost = 0;
        for (std::size_t l = 0; l < kLanes; ++l) {
            Rng& rng = lane_rngs[l];
            std::size_t state = state_[l];
            if (needs_stationary_ & (1ULL << l)) {
                needs_stationary_ &= ~(1ULL << l);
                const double u = rng.uniform();
                double acc = 0.0;
                for (std::size_t s = 0; s < stationary_.size(); ++s) {
                    acc += stationary_[s];
                    if (u < acc) {
                        state = s;
                        break;
                    }
                }
            }
            const double u = rng.uniform();
            double acc = 0.0;
            std::size_t next = loss_prob_.size() - 1;
            for (std::size_t s = 0; s < transition_[state].size(); ++s) {
                acc += transition_[state][s];
                if (u < acc) {
                    next = s;
                    break;
                }
            }
            state_[l] = static_cast<std::uint8_t>(next);
            lost |= static_cast<std::uint64_t>(rng.bernoulli(loss_prob_[next])) << l;
        }
        MCAUTH_OBS_COUNT_N("net.loss.markov.dropped", std::popcount(lost));
        return lost;
    }

private:
    std::vector<std::vector<double>> transition_;
    std::vector<double> loss_prob_;
    bool stationary_start_;
    std::vector<double> stationary_;
    std::array<std::uint8_t, kLanes> state_{};
    std::uint64_t needs_stationary_ = 0;
};

/// All lanes replay the same recorded pattern in lock-step (no variates
/// consumed), so one shared position broadcasts to a full word.
class BatchedTraceLoss final : public BatchedLossModel {
public:
    explicit BatchedTraceLoss(std::vector<bool> pattern) : pattern_(std::move(pattern)) {}

    void reset() override { position_ = 0; }

    std::uint64_t lose_next64(Rng* lane_rngs) override {
        (void)lane_rngs;
        const std::uint64_t lost = pattern_[position_] ? ~0ULL : 0;
        position_ = (position_ + 1) % pattern_.size();
        MCAUTH_OBS_COUNT_N("net.loss.trace.dropped", std::popcount(lost));
        return lost;
    }

private:
    std::vector<bool> pattern_;
    std::size_t position_ = 0;
};

}  // namespace

std::unique_ptr<BatchedLossModel> LossModel::make_batched() const {
    return std::make_unique<CloneFanoutBatchedLoss>(*this);
}

// ------------------------------------------------------------ BernoulliLoss

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
    MCAUTH_EXPECTS(p >= 0.0 && p <= 1.0);
}

bool BernoulliLoss::lose_next(Rng& rng) {
    const bool lost = rng.bernoulli(p_);
    if (lost) MCAUTH_OBS_COUNT("net.loss.bernoulli.dropped");
    return lost;
}

std::string BernoulliLoss::name() const {
    char buf[48];
    std::snprintf(buf, sizeof buf, "bernoulli(p=%.3g)", p_);
    return buf;
}

std::unique_ptr<LossModel> BernoulliLoss::clone() const {
    return std::make_unique<BernoulliLoss>(*this);
}

std::unique_ptr<BatchedLossModel> BernoulliLoss::make_batched() const {
    return std::make_unique<BatchedBernoulliLoss>(p_);
}

// ------------------------------------------------------- GilbertElliottLoss

GilbertElliottLoss::GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                                       double loss_good, double loss_bad)
    : p_gb_(p_good_to_bad), p_bg_(p_bad_to_good), loss_good_(loss_good), loss_bad_(loss_bad) {
    MCAUTH_EXPECTS(p_gb_ > 0.0 && p_gb_ <= 1.0);
    MCAUTH_EXPECTS(p_bg_ > 0.0 && p_bg_ <= 1.0);
    MCAUTH_EXPECTS(loss_good_ >= 0.0 && loss_good_ <= 1.0);
    MCAUTH_EXPECTS(loss_bad_ >= 0.0 && loss_bad_ <= 1.0);
}

GilbertElliottLoss GilbertElliottLoss::from_rate_and_burst(double loss_rate,
                                                           double mean_burst_length) {
    MCAUTH_EXPECTS(loss_rate > 0.0 && loss_rate < 1.0);
    MCAUTH_EXPECTS(mean_burst_length >= 1.0);
    // With loss_good = 0, loss_bad = 1: stationary loss = pi_bad =
    // p_gb / (p_gb + p_bg) and mean burst = 1 / p_bg.
    const double p_bg = 1.0 / mean_burst_length;
    const double p_gb = loss_rate * p_bg / (1.0 - loss_rate);
    MCAUTH_REQUIRE(p_gb <= 1.0);
    return GilbertElliottLoss(p_gb, p_bg, 0.0, 1.0);
}

bool GilbertElliottLoss::lose_next(Rng& rng) {
    // State transition first, then loss decision in the new state. The
    // order is a convention; stationary behaviour is identical.
    if (in_bad_) {
        if (rng.bernoulli(p_bg_)) in_bad_ = false;
    } else {
        if (rng.bernoulli(p_gb_)) in_bad_ = true;
    }
    const bool lost = rng.bernoulli(in_bad_ ? loss_bad_ : loss_good_);
    if (lost) MCAUTH_OBS_COUNT("net.loss.gilbert_elliott.dropped");
    return lost;
}

void GilbertElliottLoss::reset() { in_bad_ = false; }

double GilbertElliottLoss::stationary_loss_rate() const {
    const double pi_bad = p_gb_ / (p_gb_ + p_bg_);
    return pi_bad * loss_bad_ + (1.0 - pi_bad) * loss_good_;
}

std::string GilbertElliottLoss::name() const {
    char buf[96];
    std::snprintf(buf, sizeof buf, "gilbert-elliott(rate=%.3g, burst=%.3g)",
                  stationary_loss_rate(), mean_burst_length());
    return buf;
}

std::unique_ptr<LossModel> GilbertElliottLoss::clone() const {
    return std::make_unique<GilbertElliottLoss>(*this);
}

std::unique_ptr<BatchedLossModel> GilbertElliottLoss::make_batched() const {
    return std::make_unique<BatchedGilbertElliottLoss>(p_gb_, p_bg_, loss_good_,
                                                       loss_bad_);
}

// ---------------------------------------------------------------- MarkovLoss

MarkovLoss::MarkovLoss(std::vector<std::vector<double>> transition,
                       std::vector<double> loss_prob, bool stationary_start)
    : transition_(std::move(transition)),
      loss_prob_(std::move(loss_prob)),
      stationary_start_(stationary_start),
      needs_stationary_draw_(stationary_start) {
    MCAUTH_EXPECTS(!loss_prob_.empty());
    MCAUTH_EXPECTS(transition_.size() == loss_prob_.size());
    for (const auto& row : transition_) {
        MCAUTH_EXPECTS(row.size() == loss_prob_.size());
        double sum = 0.0;
        for (double p : row) {
            MCAUTH_EXPECTS(p >= 0.0 && p <= 1.0);
            sum += p;
        }
        MCAUTH_EXPECTS(std::abs(sum - 1.0) < 1e-9);
    }
    for (double p : loss_prob_) MCAUTH_EXPECTS(p >= 0.0 && p <= 1.0);
    if (stationary_start_) stationary_ = stationary_distribution();
}

bool MarkovLoss::lose_next(Rng& rng) {
    if (needs_stationary_draw_) {
        // Draw the pre-stream state from pi; since pi*P = pi the chain is
        // then stationary at every subsequent decision.
        needs_stationary_draw_ = false;
        const double u = rng.uniform();
        double acc = 0.0;
        for (std::size_t s = 0; s < stationary_.size(); ++s) {
            acc += stationary_[s];
            if (u < acc) {
                state_ = s;
                break;
            }
        }
    }
    // Advance the chain by inverse-CDF over the current row.
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t next = loss_prob_.size() - 1;
    for (std::size_t s = 0; s < transition_[state_].size(); ++s) {
        acc += transition_[state_][s];
        if (u < acc) {
            next = s;
            break;
        }
    }
    state_ = next;
    const bool lost = rng.bernoulli(loss_prob_[state_]);
    if (lost) MCAUTH_OBS_COUNT("net.loss.markov.dropped");
    return lost;
}

std::vector<double> MarkovLoss::stationary_distribution() const {
    const std::size_t m = loss_prob_.size();
    std::vector<double> pi(m, 1.0 / static_cast<double>(m));
    std::vector<double> next(m, 0.0);
    for (int iter = 0; iter < 10000; ++iter) {
        std::fill(next.begin(), next.end(), 0.0);
        for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < m; ++j) next[j] += pi[i] * transition_[i][j];
        double diff = 0.0;
        for (std::size_t j = 0; j < m; ++j) diff += std::abs(next[j] - pi[j]);
        pi.swap(next);
        if (diff < 1e-14) break;
    }
    return pi;
}

double MarkovLoss::stationary_loss_rate() const {
    const auto pi = stationary_distribution();
    double rate = 0.0;
    for (std::size_t s = 0; s < pi.size(); ++s) rate += pi[s] * loss_prob_[s];
    return rate;
}

std::string MarkovLoss::name() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "markov(m=%zu, rate=%.3g)", loss_prob_.size(),
                  stationary_loss_rate());
    return buf;
}

std::unique_ptr<LossModel> MarkovLoss::clone() const {
    return std::make_unique<MarkovLoss>(*this);
}

std::unique_ptr<BatchedLossModel> MarkovLoss::make_batched() const {
    // The flat sampler packs lane states into bytes; a chain wider than
    // that falls back to the generic adapter.
    if (state_count() > 255) return LossModel::make_batched();
    return std::make_unique<BatchedMarkovLoss>(transition_, loss_prob_,
                                               stationary_start_, stationary_);
}

// ----------------------------------------------------------------- TraceLoss

TraceLoss::TraceLoss(std::vector<bool> pattern) : pattern_(std::move(pattern)) {
    MCAUTH_EXPECTS(!pattern_.empty());
}

bool TraceLoss::lose_next(Rng& rng) {
    (void)rng;
    const bool lost = pattern_[position_];
    position_ = (position_ + 1) % pattern_.size();
    if (lost) MCAUTH_OBS_COUNT("net.loss.trace.dropped");
    return lost;
}

double TraceLoss::stationary_loss_rate() const {
    std::size_t lost = 0;
    for (bool l : pattern_) lost += l ? 1 : 0;
    return static_cast<double>(lost) / static_cast<double>(pattern_.size());
}

std::string TraceLoss::name() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "trace(len=%zu, rate=%.3g)", pattern_.size(),
                  stationary_loss_rate());
    return buf;
}

std::unique_ptr<LossModel> TraceLoss::clone() const {
    return std::make_unique<TraceLoss>(*this);
}

std::unique_ptr<BatchedLossModel> TraceLoss::make_batched() const {
    return std::make_unique<BatchedTraceLoss>(pattern_);
}

std::vector<bool> sample_loss_pattern(LossModel& model, Rng& rng, std::size_t n) {
    model.reset();
    std::vector<bool> pattern(n);
    for (std::size_t i = 0; i < n; ++i) pattern[i] = model.lose_next(rng);
    return pattern;
}

}  // namespace mcauth

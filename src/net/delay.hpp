// End-to-end delay models.
//
// §4.1 of the paper justifies a Gaussian end-to-end delay: a packet crosses
// N routers with i.i.d. queueing delays, so the sum approaches N(mu, sigma^2)
// (Equation 5). TESLA's authentication probability depends directly on
// Pr{delay <= T_disclose}, so the delay model is a first-class object here.
#pragma once

#include <memory>
#include <string>

#include "util/rng.hpp"

namespace mcauth {

class DelayModel {
public:
    virtual ~DelayModel() = default;

    /// One end-to-end delay sample (seconds); always >= 0.
    virtual double sample(Rng& rng) = 0;

    virtual double mean() const = 0;
    virtual double stddev() const = 0;

    /// Pr{delay <= d} — exact where a closed form exists; used by the
    /// analytical TESLA evaluation (Equations 6-7).
    virtual double cdf(double d) const = 0;

    virtual std::string name() const = 0;
    virtual std::unique_ptr<DelayModel> clone() const = 0;
};

class ConstantDelay final : public DelayModel {
public:
    explicit ConstantDelay(double delay);

    double sample(Rng&) override { return delay_; }
    double mean() const override { return delay_; }
    double stddev() const override { return 0.0; }
    double cdf(double d) const override { return d >= delay_ ? 1.0 : 0.0; }
    std::string name() const override;
    std::unique_ptr<DelayModel> clone() const override;

private:
    double delay_;
};

/// The paper's Gaussian model, truncated below at zero when sampling (a
/// negative queueing delay is unphysical; with the mu/sigma regimes of the
/// paper the truncated mass is negligible, and the analytical cdf stays the
/// untruncated Gaussian exactly as in Equation 5).
class GaussianDelay final : public DelayModel {
public:
    GaussianDelay(double mu, double sigma);

    double sample(Rng& rng) override;
    double mean() const override { return mu_; }
    double stddev() const override { return sigma_; }
    double cdf(double d) const override;
    std::string name() const override;
    std::unique_ptr<DelayModel> clone() const override;

private:
    double mu_;
    double sigma_;
};

/// Propagation offset plus exponential queueing tail; a common heavier-tail
/// alternative for checking how sensitive TESLA's q_min is to the Gaussian
/// assumption.
class ShiftedExponentialDelay final : public DelayModel {
public:
    ShiftedExponentialDelay(double offset, double mean_extra);

    double sample(Rng& rng) override;
    double mean() const override { return offset_ + mean_extra_; }
    double stddev() const override { return mean_extra_; }
    double cdf(double d) const override;
    std::string name() const override;
    std::unique_ptr<DelayModel> clone() const override;

private:
    double offset_;
    double mean_extra_;
};

}  // namespace mcauth

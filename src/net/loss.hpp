// Packet-loss models.
//
// The paper analyzes the independent random-loss channel (each packet lost
// i.i.d. with probability p, §4.1) and names the m-state Markov model as
// future work. We implement:
//
//   * BernoulliLoss      - the paper's analytical model;
//   * GilbertElliottLoss - the classical 2-state bursty channel (the loss
//                          pattern the Augmented Chain was designed for);
//   * MarkovLoss         - general m-state chain with per-state loss
//                          probabilities (subsumes both of the above).
//
// Models are stateful (burstiness needs memory across packets), cheap to
// clone (Monte-Carlo runs one instance per trial), and report their
// stationary loss rate so experiments can equalize average loss across
// models while varying burstiness.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace mcauth {

/// 64 independent replicas of a loss model advanced in lock-step, one per
/// bit lane — the sampling adapter for the bit-sliced Monte-Carlo engine
/// (exec/bitslice.hpp). The contract that makes scalar and bit-sliced
/// engines bit-identical: lane l of lose_next64 consumes EXACTLY the
/// variates LossModel::lose_next would consume from lane_rngs[l] and makes
/// the same decision. The default adapter guarantees this by literally
/// running 64 clones; the specialized Bernoulli / Gilbert-Elliott / Markov
/// overrides keep per-lane state in flat arrays instead (no virtual call
/// per lane, no heap clone per lane) and are covered by
/// lane-vs-scalar equivalence tests.
class BatchedLossModel {
public:
    static constexpr std::size_t kLanes = 64;

    virtual ~BatchedLossModel() = default;

    /// Return every lane to the initial state (LossModel::reset per lane).
    virtual void reset() = 0;

    /// Decide the fate of the next packet in all 64 lanes: bit l of the
    /// result is 1 iff lane l lost the packet, drawn from lane_rngs[l].
    /// `lane_rngs` must point at kLanes generators.
    virtual std::uint64_t lose_next64(Rng* lane_rngs) = 0;

    /// Decide `count` packets at once: out[k] is what lose_next64 would
    /// have returned for the k-th call (out is fully overwritten). The
    /// default simply loops; the Bernoulli override walks lane-major —
    /// each lane's generator stays in registers across the whole packet
    /// sequence instead of round-tripping through memory per packet —
    /// which is where the bit-sliced engine's single-thread speedup
    /// comes from. Per-lane variate order is unchanged (packet-ascending),
    /// so the scalar-equivalence contract is unaffected.
    virtual void sample_block(Rng* lane_rngs, std::uint64_t* out, std::size_t count) {
        for (std::size_t k = 0; k < count; ++k) out[k] = lose_next64(lane_rngs);
    }
};

class LossModel {
public:
    virtual ~LossModel() = default;

    /// Decide the fate of the next packet in sequence order.
    virtual bool lose_next(Rng& rng) = 0;

    /// Return to the initial (stationary) state.
    virtual void reset() = 0;

    /// Long-run fraction of packets lost.
    virtual double stationary_loss_rate() const = 0;

    virtual std::string name() const = 0;

    virtual std::unique_ptr<LossModel> clone() const = 0;

    /// A 64-lane batched sampler over independent replicas of this model,
    /// starting from the initial (reset) state. The base implementation
    /// fans out over 64 clone()s, so every LossModel — including ones
    /// defined outside this header — gets a correct batched form for free;
    /// the in-tree models override it with flat per-lane state.
    virtual std::unique_ptr<BatchedLossModel> make_batched() const;
};

/// i.i.d. loss with probability p — the paper's §4.1 model.
class BernoulliLoss final : public LossModel {
public:
    explicit BernoulliLoss(double p);

    bool lose_next(Rng& rng) override;
    void reset() override {}
    double stationary_loss_rate() const override { return p_; }
    std::string name() const override;
    std::unique_ptr<LossModel> clone() const override;
    std::unique_ptr<BatchedLossModel> make_batched() const override;

private:
    double p_;
};

/// Two-state Gilbert–Elliott channel. In the Good state packets are lost
/// with probability loss_good (usually 0), in Bad with loss_bad (usually 1).
/// Transition probabilities are applied per packet.
class GilbertElliottLoss final : public LossModel {
public:
    GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good, double loss_good = 0.0,
                       double loss_bad = 1.0);

    /// Convenience: pick transition rates to hit a target stationary loss
    /// rate with a given mean burst length (expected consecutive packets in
    /// the Bad state), with loss_good = 0 and loss_bad = 1.
    static GilbertElliottLoss from_rate_and_burst(double loss_rate, double mean_burst_length);

    bool lose_next(Rng& rng) override;
    void reset() override;
    double stationary_loss_rate() const override;
    std::string name() const override;
    std::unique_ptr<LossModel> clone() const override;
    std::unique_ptr<BatchedLossModel> make_batched() const override;

    double mean_burst_length() const { return 1.0 / p_bg_; }

private:
    double p_gb_;
    double p_bg_;
    double loss_good_;
    double loss_bad_;
    bool in_bad_ = false;
};

/// General m-state Markov loss model: row-stochastic transition matrix and a
/// per-state loss probability. After reset() the chain restarts in state 0,
/// or — with `stationary_start` — in a state drawn from the stationary
/// distribution on the next decision (matching the exact-DP analysis in
/// core/exact_dp.hpp, which assumes a stationary channel).
class MarkovLoss final : public LossModel {
public:
    MarkovLoss(std::vector<std::vector<double>> transition, std::vector<double> loss_prob,
               bool stationary_start = false);

    bool lose_next(Rng& rng) override;
    void reset() override {
        state_ = 0;
        needs_stationary_draw_ = stationary_start_;
    }
    double stationary_loss_rate() const override;
    std::string name() const override;
    std::unique_ptr<LossModel> clone() const override;
    std::unique_ptr<BatchedLossModel> make_batched() const override;

    std::size_t state_count() const noexcept { return loss_prob_.size(); }

    /// Stationary distribution (power iteration).
    std::vector<double> stationary_distribution() const;

private:
    std::vector<std::vector<double>> transition_;
    std::vector<double> loss_prob_;
    std::size_t state_ = 0;
    bool stationary_start_ = false;
    bool needs_stationary_draw_ = false;
    std::vector<double> stationary_;  // cached when stationary_start_
};

/// Replays a recorded loss pattern (e.g. from a packet capture), looping
/// when exhausted. Deterministic — the Rng is unused — which makes it the
/// tool for regression-pinning a specific adversarial pattern or comparing
/// schemes on IDENTICAL loss (paired evaluation, lower variance than
/// independent sampling).
class TraceLoss final : public LossModel {
public:
    explicit TraceLoss(std::vector<bool> pattern);

    bool lose_next(Rng& rng) override;
    void reset() override { position_ = 0; }
    double stationary_loss_rate() const override;
    std::string name() const override;
    std::unique_ptr<LossModel> clone() const override;
    std::unique_ptr<BatchedLossModel> make_batched() const override;

    std::size_t length() const noexcept { return pattern_.size(); }

private:
    std::vector<bool> pattern_;
    std::size_t position_ = 0;
};

/// Sample a loss pattern for n packets: pattern[i] == true means packet i
/// was lost. Resets the model first.
std::vector<bool> sample_loss_pattern(LossModel& model, Rng& rng, std::size_t n);

}  // namespace mcauth

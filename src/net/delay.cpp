#include "net/delay.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace mcauth {

// ------------------------------------------------------------ ConstantDelay

ConstantDelay::ConstantDelay(double delay) : delay_(delay) {
    MCAUTH_EXPECTS(delay >= 0.0);
}

std::string ConstantDelay::name() const {
    char buf[48];
    std::snprintf(buf, sizeof buf, "constant(%.3g s)", delay_);
    return buf;
}

std::unique_ptr<DelayModel> ConstantDelay::clone() const {
    return std::make_unique<ConstantDelay>(*this);
}

// ------------------------------------------------------------ GaussianDelay

GaussianDelay::GaussianDelay(double mu, double sigma) : mu_(mu), sigma_(sigma) {
    MCAUTH_EXPECTS(mu >= 0.0);
    MCAUTH_EXPECTS(sigma >= 0.0);
}

double GaussianDelay::sample(Rng& rng) {
    return std::max(0.0, rng.normal(mu_, sigma_));
}

double GaussianDelay::cdf(double d) const {
    if (sigma_ == 0.0) return d >= mu_ ? 1.0 : 0.0;
    return normal_cdf((d - mu_) / sigma_);
}

std::string GaussianDelay::name() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "gaussian(mu=%.3g, sigma=%.3g)", mu_, sigma_);
    return buf;
}

std::unique_ptr<DelayModel> GaussianDelay::clone() const {
    return std::make_unique<GaussianDelay>(*this);
}

// -------------------------------------------------- ShiftedExponentialDelay

ShiftedExponentialDelay::ShiftedExponentialDelay(double offset, double mean_extra)
    : offset_(offset), mean_extra_(mean_extra) {
    MCAUTH_EXPECTS(offset >= 0.0);
    MCAUTH_EXPECTS(mean_extra > 0.0);
}

double ShiftedExponentialDelay::sample(Rng& rng) {
    return offset_ + rng.exponential(1.0 / mean_extra_);
}

double ShiftedExponentialDelay::cdf(double d) const {
    if (d <= offset_) return 0.0;
    return 1.0 - std::exp(-(d - offset_) / mean_extra_);
}

std::string ShiftedExponentialDelay::name() const {
    char buf[80];
    std::snprintf(buf, sizeof buf, "shifted-exp(offset=%.3g, mean-extra=%.3g)", offset_,
                  mean_extra_);
    return buf;
}

std::unique_ptr<DelayModel> ShiftedExponentialDelay::clone() const {
    return std::make_unique<ShiftedExponentialDelay>(*this);
}

}  // namespace mcauth

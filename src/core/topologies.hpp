// Dependence-graph builders for every scheme the paper analyzes (§2, Fig. 1)
// plus the probabilistic construction of §5.
//
// All builders use the reversed indexing of §4.2: vertex 0 is P_sign and
// vertex i is the packet i sequence-steps away from it. Each builder fixes
// send_pos so that transmission order is faithful to the original scheme
// (Rohatgi signs the *first* packet transmitted; EMSS/AC sign the *last*).
#pragma once

#include <cstdint>
#include <vector>

#include "core/dependence_graph.hpp"
#include "util/rng.hpp"

namespace mcauth {

/// Gennaro–Rohatgi simple chain [3]: P_sign is the first packet sent; each
/// packet carries the hash of the next. One path per vertex, zero receiver
/// delay, no loss tolerance.
DependenceGraph make_rohatgi(std::size_t n);

/// Wong–Lam authentication tree [7] as a dependence-graph: every packet is
/// individually verifiable (it carries a signed Merkle path), so the graph
/// is a star from the root. The star edges model "authentication material
/// travels inside the packet itself"; q_i == 1 under any loss. The real
/// per-packet overhead (log n hashes + signature) is computed by the
/// metrics layer from scheme parameters, not from out-degrees.
DependenceGraph make_auth_tree(std::size_t n);

/// EMSS E_{m,d} [6]: signature packet sent last. In reversed indexing each
/// vertex i is linked from the m earlier vertices {i-1, i-1-d, ...,
/// i-1-(m-1)d} (offsets clamped to the root). d=1 gives the contiguous
/// {i-1..i-m} pattern; E_{2,1} is the scheme of Fig. 1 and Eq. 8.
DependenceGraph make_emss(std::size_t n, std::size_t m, std::size_t d);

/// Offsets-based periodic scheme (generalization the paper writes as the
/// set A in Eq. 9): vertex i is linked from {i - a : a in offsets}, clamped
/// to the root. EMSS and Rohatgi are special cases; exposed for the design
/// module and for property tests of the recurrence engine.
DependenceGraph make_offset_scheme(std::size_t n, const std::vector<std::size_t>& offsets,
                                   std::string name = "offsets");

/// Golle–Modadugu augmented chain C_{a,b} [4], following Eq. 10 exactly:
/// first-level chain vertices every (b+1) positions with links from the
/// previous and the a-th previous chain vertex; b second-level packets per
/// gap, zig-zag linked and each also carried by its group's chain packet.
DependenceGraph make_augmented_chain(std::size_t n, std::size_t a, std::size_t b);

/// §5 probabilistic construction: a spine chain guarantees Definition 1
/// reachability, then each vertex gains extra edges from earlier vertices,
/// each present independently with probability `edge_prob`.
DependenceGraph make_random_scheme(std::size_t n, double edge_prob, Rng& rng,
                                   std::size_t max_extra_per_vertex = 8);

}  // namespace mcauth

#include "core/tesla.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "exec/bitslice.hpp"
#include "exec/sharded.hpp"
#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace mcauth {

namespace {

TeslaAnalysis analyze_with_xi(const TeslaParams& params, double xi) {
    MCAUTH_EXPECTS(params.n >= 1);
    MCAUTH_EXPECTS(params.p >= 0.0 && params.p <= 1.0);
    TeslaAnalysis result;
    result.xi = xi;
    result.q.resize(params.n);
    for (std::size_t i = 1; i <= params.n; ++i) {
        const double lambda =
            1.0 - std::pow(params.p, static_cast<double>(params.n + 1 - i));
        result.q[i - 1] = lambda * xi;
    }
    // λ is smallest for the last packet: λ_n = 1 - p (Eq. 7).
    result.q_min = (1.0 - params.p) * xi;
    return result;
}

}  // namespace

TeslaAnalysis analyze_tesla(const TeslaParams& params) {
    MCAUTH_EXPECTS(params.sigma >= 0.0);
    const double xi =
        params.sigma == 0.0
            ? (params.t_disclose >= params.mu ? 1.0 : 0.0)
            : normal_cdf((params.t_disclose - params.mu) / params.sigma);
    return analyze_with_xi(params, xi);
}

TeslaAnalysis analyze_tesla(const TeslaParams& params, const DelayModel& delay) {
    return analyze_with_xi(params, delay.cdf(params.t_disclose));
}

double required_disclosure_delay(double mu, double sigma, double p, double target_q_min) {
    MCAUTH_EXPECTS(mu >= 0.0 && sigma >= 0.0);
    MCAUTH_EXPECTS(p >= 0.0 && p < 1.0);
    MCAUTH_EXPECTS(target_q_min > 0.0 && target_q_min < 1.0);
    const double required_xi = target_q_min / (1.0 - p);
    if (required_xi >= 1.0) return std::numeric_limits<double>::infinity();
    if (sigma == 0.0) return mu;  // any T > mu gives xi = 1
    return mu + sigma * normal_quantile(required_xi);
}

namespace {

struct TeslaCounts {
    std::vector<std::uint64_t> received;
    std::vector<std::uint64_t> verified;
};

/// One scalar shard: trials [first, first + count), each on its own RNG
/// stream derived from (seed, trial_index); own model clones, buffers
/// reused across trials — nothing allocates inside the trial loop.
void run_tesla_shard_scalar(const TeslaParams& params, const LossModel& loss_proto,
                            const DelayModel& delay_proto, std::uint64_t seed,
                            std::size_t first, std::size_t count, TeslaCounts& counts) {
    const std::size_t n = params.n;
    counts.received.assign(n, 0);
    counts.verified.assign(n, 0);
    const auto loss = loss_proto.clone();
    const auto delay = delay_proto.clone();
    std::vector<std::uint8_t> received_timely(n);
    std::vector<std::uint8_t> carrier_lost(n);

    for (std::size_t t = first; t < first + count; ++t) {
        Rng rng(exec::derive_stream_seed(seed, t));
        loss->reset();
        for (std::size_t i = 0; i < n; ++i)
            received_timely[i] = loss->lose_next(rng) ? 0 : 1;
        // Key carriers form their own transmission sequence (paper's
        // independence assumption); bursty models correlate within it.
        loss->reset();
        for (std::size_t i = 0; i < n; ++i)
            carrier_lost[i] = loss->lose_next(rng) ? 1 : 0;

        // Delay draws stay in forward packet order (one per received
        // packet); received_timely narrows to "received AND before the
        // disclosure deadline".
        for (std::size_t i = 0; i < n; ++i) {
            if (!received_timely[i]) continue;
            ++counts.received[i];
            if (delay->sample(rng) > params.t_disclose) received_timely[i] = 0;
        }
        // key_available for packet i means some K_j with j >= i arrived —
        // the suffix scan folds into the backward counting pass.
        bool key_available = false;
        for (std::size_t i = n; i-- > 0;) {
            key_available = key_available || !carrier_lost[i];
            if (received_timely[i] && key_available) ++counts.verified[i];
        }
    }
}

/// One bit-sliced shard: 64-lane batches over the same per-trial streams.
/// Loss sampling is word-at-a-time through the batched adapter; delay draws
/// stay per-lane (lane l draws from its own stream for exactly the packets
/// the scalar trial draws for, in the same forward packet order, so lane
/// variate sequences match the scalar engine bit-for-bit). The key
/// availability suffix scan and all counting collapse to word ops.
void run_tesla_shard_bitsliced(const TeslaParams& params, const LossModel& loss_proto,
                               const DelayModel& delay_proto,
                               const exec::BitslicedTrials& bt, std::size_t s,
                               TeslaCounts& counts) {
    const std::size_t n = params.n;
    counts.received.assign(n, 0);
    counts.verified.assign(n, 0);
    const auto batched = loss_proto.make_batched();
    const auto delay = delay_proto.clone();
    std::vector<Rng> lanes;
    std::vector<std::uint64_t> timely(n, 0);      // bit l: lane l received in time
    std::vector<std::uint64_t> carrier_ok(n, 0);  // bit l: lane l's carrier arrived

    const std::size_t begin = bt.shard_batch_begin(s);
    const std::size_t end = begin + bt.shard_batches(s);
    for (std::size_t b = begin; b < end; ++b) {
        bt.seed_lanes(b, lanes);
        batched->reset();
        batched->sample_block(lanes.data(), timely.data(), n);
        // Key carriers form their own transmission sequence (paper's
        // independence assumption); bursty models correlate within it.
        batched->reset();
        batched->sample_block(lanes.data(), carrier_ok.data(), n);
        // sample_block yields "lost" words; flip in place to "arrived".
        for (std::size_t i = 0; i < n; ++i) {
            timely[i] = ~timely[i];
            carrier_ok[i] = ~carrier_ok[i];
        }

        const std::uint64_t active = bt.active_mask(b);
        // Delay draws in forward packet order, one per received packet per
        // lane; the received count is taken before the deadline narrows
        // `timely`, matching the scalar loop.
        for (std::size_t i = 0; i < n; ++i) {
            counts.received[i] += static_cast<std::uint64_t>(
                std::popcount(timely[i] & active));
            std::uint64_t pending = timely[i];
            while (pending) {
                const int l = std::countr_zero(pending);
                pending &= pending - 1;
                if (delay->sample(lanes[static_cast<std::size_t>(l)]) >
                    params.t_disclose)
                    timely[i] &= ~(1ULL << l);
            }
        }
        // key_available for packet i means some K_j with j >= i arrived —
        // the suffix scan is one OR per packet across all 64 lanes.
        std::uint64_t key_available = 0;
        for (std::size_t i = n; i-- > 0;) {
            key_available |= carrier_ok[i];
            counts.verified[i] += static_cast<std::uint64_t>(
                std::popcount(timely[i] & key_available & active));
        }
    }
}

}  // namespace

TeslaMonteCarlo monte_carlo_tesla(const TeslaParams& params, const LossModel& loss,
                                  const DelayModel& delay, std::uint64_t seed,
                                  std::size_t trials, McEngine engine) {
    MCAUTH_EXPECTS(trials >= 1);
    const std::size_t n = params.n;

    // Inert unless --progress / obs::set_progress_enabled: stderr-only
    // throughput line + exec.progress.* gauges, ticked per finished shard.
    obs::ProgressReporter progress("mc.tesla", trials);
    std::vector<TeslaCounts> parts;
    if (engine == McEngine::kBitsliced) {
        const exec::BitslicedTrials bt(trials, seed);
        MCAUTH_OBS_COUNT_N("core.bitslice.batches", bt.batch_count());
        MCAUTH_OBS_COUNT_N("core.bitslice.ghost_lanes",
                           bt.batch_count() * exec::BitslicedTrials::kLanes - trials);
        MCAUTH_OBS_COUNT_N("core.bitslice.word_ops", bt.batch_count() * 3 * n);
        parts.resize(bt.shard_count());
        exec::ThreadPool::global().parallel_for(
            bt.shard_count(), 1, [&](std::size_t begin, std::size_t end) {
                for (std::size_t s = begin; s < end; ++s) {
                    run_tesla_shard_bitsliced(params, loss, delay, bt, s, parts[s]);
                    progress.tick(bt.shard_batches(s) * exec::BitslicedTrials::kLanes);
                }
            });
    } else {
        const exec::ShardedTrials shards(trials, seed);
        parts.resize(shards.shard_count());
        exec::ThreadPool::global().parallel_for(
            shards.shard_count(), 1, [&](std::size_t begin, std::size_t end) {
                for (std::size_t s = begin; s < end; ++s) {
                    run_tesla_shard_scalar(params, loss, delay, seed,
                                           shards.shard_begin(s), shards.shard_trials(s),
                                           parts[s]);
                    progress.tick(shards.shard_trials(s));
                }
            });
    }

    std::vector<std::uint64_t> received_count(n, 0);
    std::vector<std::uint64_t> verified_count(n, 0);
    for (const TeslaCounts& part : parts) {
        for (std::size_t i = 0; i < n; ++i) {
            received_count[i] += part.received[i];
            verified_count[i] += part.verified[i];
        }
    }

    TeslaMonteCarlo result;
    result.trials = trials;
    result.q.assign(n, 1.0);
    result.q_min = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t i = 0; i < n; ++i) {
        // 0/0 — packet never arrived, the conditional is unresolved.
        result.q[i] = received_count[i] == 0
                          ? std::numeric_limits<double>::quiet_NaN()
                          : static_cast<double>(verified_count[i]) /
                                static_cast<double>(received_count[i]);
        if (std::isnan(result.q[i])) continue;
        if (std::isnan(result.q_min) || result.q[i] < result.q_min)
            result.q_min = result.q[i];
    }
    return result;
}

VertexId TeslaGraph::message_node(std::size_t i) const {
    MCAUTH_EXPECTS(i >= 1 && 2 * i - 1 < graph.vertex_count());
    return static_cast<VertexId>(2 * i - 1);
}

VertexId TeslaGraph::key_node(std::size_t i) const {
    MCAUTH_EXPECTS(i >= 1 && 2 * i < graph.vertex_count());
    return static_cast<VertexId>(2 * i);
}

TeslaGraph make_tesla_graph(std::size_t n, std::size_t a) {
    MCAUTH_EXPECTS(n >= 1);
    TeslaGraph tg;
    tg.graph = Digraph(1 + 2 * n);
    tg.labels.resize(1 + 2 * n);
    tg.labels[0] = "bootstrap";
    for (std::size_t i = 1; i <= n; ++i) {
        tg.labels[tg.message_node(i)] = "P" + std::to_string(i);
        tg.labels[tg.key_node(i)] =
            "K(" + std::to_string(i) + "," + std::to_string(a) + ")";
    }
    for (std::size_t i = 1; i <= n; ++i) {
        // The signed bootstrap authenticates every chain key (commitment).
        tg.graph.add_edge(tg.root, tg.key_node(i));
        // K_j authenticates P_i for every i <= j (chain walk-back).
        for (std::size_t j = i; j <= n; ++j)
            tg.graph.add_edge(tg.key_node(j), tg.message_node(i));
    }
    return tg;
}

}  // namespace mcauth

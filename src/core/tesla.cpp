#include "core/tesla.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace mcauth {

namespace {

TeslaAnalysis analyze_with_xi(const TeslaParams& params, double xi) {
    MCAUTH_EXPECTS(params.n >= 1);
    MCAUTH_EXPECTS(params.p >= 0.0 && params.p <= 1.0);
    TeslaAnalysis result;
    result.xi = xi;
    result.q.resize(params.n);
    for (std::size_t i = 1; i <= params.n; ++i) {
        const double lambda =
            1.0 - std::pow(params.p, static_cast<double>(params.n + 1 - i));
        result.q[i - 1] = lambda * xi;
    }
    // λ is smallest for the last packet: λ_n = 1 - p (Eq. 7).
    result.q_min = (1.0 - params.p) * xi;
    return result;
}

}  // namespace

TeslaAnalysis analyze_tesla(const TeslaParams& params) {
    MCAUTH_EXPECTS(params.sigma >= 0.0);
    const double xi =
        params.sigma == 0.0
            ? (params.t_disclose >= params.mu ? 1.0 : 0.0)
            : normal_cdf((params.t_disclose - params.mu) / params.sigma);
    return analyze_with_xi(params, xi);
}

TeslaAnalysis analyze_tesla(const TeslaParams& params, const DelayModel& delay) {
    return analyze_with_xi(params, delay.cdf(params.t_disclose));
}

double required_disclosure_delay(double mu, double sigma, double p, double target_q_min) {
    MCAUTH_EXPECTS(mu >= 0.0 && sigma >= 0.0);
    MCAUTH_EXPECTS(p >= 0.0 && p < 1.0);
    MCAUTH_EXPECTS(target_q_min > 0.0 && target_q_min < 1.0);
    const double required_xi = target_q_min / (1.0 - p);
    if (required_xi >= 1.0) return std::numeric_limits<double>::infinity();
    if (sigma == 0.0) return mu;  // any T > mu gives xi = 1
    return mu + sigma * normal_quantile(required_xi);
}

TeslaMonteCarlo monte_carlo_tesla(const TeslaParams& params, LossModel& loss,
                                  DelayModel& delay, Rng& rng, std::size_t trials) {
    MCAUTH_EXPECTS(trials >= 1);
    const std::size_t n = params.n;
    std::vector<std::size_t> received_count(n, 0);
    std::vector<std::size_t> verified_count(n, 0);
    std::vector<bool> data_lost(n);
    std::vector<bool> carrier_lost(n);

    for (std::size_t t = 0; t < trials; ++t) {
        loss.reset();
        for (std::size_t i = 0; i < n; ++i) data_lost[i] = loss.lose_next(rng);
        // Key carriers form their own transmission sequence (paper's
        // independence assumption); bursty models correlate within it.
        loss.reset();
        for (std::size_t i = 0; i < n; ++i) carrier_lost[i] = loss.lose_next(rng);

        // key_available[i]: some K_j with j >= i arrived — suffix scan.
        bool suffix_any = false;
        std::vector<bool> key_available(n);
        for (std::size_t i = n; i-- > 0;) {
            suffix_any = suffix_any || !carrier_lost[i];
            key_available[i] = suffix_any;
        }

        for (std::size_t i = 0; i < n; ++i) {
            if (data_lost[i]) continue;
            ++received_count[i];
            const bool timely = delay.sample(rng) <= params.t_disclose;
            if (key_available[i] && timely) ++verified_count[i];
        }
    }

    TeslaMonteCarlo result;
    result.trials = trials;
    result.q.assign(n, 1.0);
    result.q_min = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
        result.q[i] = received_count[i] == 0
                          ? 1.0
                          : static_cast<double>(verified_count[i]) /
                                static_cast<double>(received_count[i]);
        result.q_min = std::min(result.q_min, result.q[i]);
    }
    return result;
}

VertexId TeslaGraph::message_node(std::size_t i) const {
    MCAUTH_EXPECTS(i >= 1 && 2 * i - 1 < graph.vertex_count());
    return static_cast<VertexId>(2 * i - 1);
}

VertexId TeslaGraph::key_node(std::size_t i) const {
    MCAUTH_EXPECTS(i >= 1 && 2 * i < graph.vertex_count());
    return static_cast<VertexId>(2 * i);
}

TeslaGraph make_tesla_graph(std::size_t n, std::size_t a) {
    MCAUTH_EXPECTS(n >= 1);
    TeslaGraph tg;
    tg.graph = Digraph(1 + 2 * n);
    tg.labels.resize(1 + 2 * n);
    tg.labels[0] = "bootstrap";
    for (std::size_t i = 1; i <= n; ++i) {
        tg.labels[tg.message_node(i)] = "P" + std::to_string(i);
        tg.labels[tg.key_node(i)] =
            "K(" + std::to_string(i) + "," + std::to_string(a) + ")";
    }
    for (std::size_t i = 1; i <= n; ++i) {
        // The signed bootstrap authenticates every chain key (commitment).
        tg.graph.add_edge(tg.root, tg.key_node(i));
        // K_j authenticates P_i for every i <= j (chain walk-back).
        for (std::size_t j = i; j <= n; ++j)
            tg.graph.add_edge(tg.key_node(j), tg.message_node(i));
    }
    return tg;
}

}  // namespace mcauth

// Text serialization for dependence-graphs, so §5-designed schemes are a
// deployable artifact: design once, ship the file, both endpoints load it
// as the topology.
//
// Format (line-oriented, '#' comments allowed):
//
//   mcauth-dependence-graph v1
//   name <scheme name, may contain spaces>
//   packets <n>
//   sendpos <n space-separated transmission positions, vertex order>
//   edge <u> <v>        (one line per dependence u -> v)
//   end
#pragma once

#include <string>
#include <string_view>

#include "core/dependence_graph.hpp"

namespace mcauth {

std::string to_text(const DependenceGraph& dg);

/// Parses and VALIDATES (Definition 1: acyclic, all vertices reachable);
/// throws std::runtime_error with a line diagnosis on malformed input.
DependenceGraph dependence_graph_from_text(std::string_view text);

}  // namespace mcauth

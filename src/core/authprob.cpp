#include "core/authprob.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "exec/bitslice.hpp"
#include "exec/sharded.hpp"
#include "exec/thread_pool.hpp"
#include "graph/csr.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace mcauth {

namespace {

/// NaN entries (Monte-Carlo vertices never received: 0/0, unresolved) are
/// skipped; all-NaN yields NaN.
double min_over_non_root(const std::vector<double>& q) {
    double q_min = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t v = 1; v < q.size(); ++v) {
        if (std::isnan(q[v])) continue;
        if (std::isnan(q_min) || q[v] < q_min) q_min = q[v];
    }
    return q.size() <= 1 ? 1.0 : q_min;
}

}  // namespace

AuthProb recurrence_auth_prob(const DependenceGraph& dg, double p) {
    MCAUTH_EXPECTS(p >= 0.0 && p <= 1.0);
    MCAUTH_OBS_COUNT("core.recurrence.calls");
    MCAUTH_OBS_COUNT_N("core.recurrence.vertex_evals", dg.packet_count());
    const auto order = topological_order(dg.graph());
    MCAUTH_EXPECTS(order.has_value());

    AuthProb result;
    result.q.assign(dg.packet_count(), 0.0);
    result.q[DependenceGraph::root()] = 1.0;
    const double survive = 1.0 - p;

    for (VertexId v : *order) {
        if (v == DependenceGraph::root()) continue;
        const auto preds = dg.graph().predecessors(v);
        if (preds.empty()) continue;  // unreachable vertex: q stays 0
        double all_paths_broken = 1.0;
        for (VertexId u : preds) {
            const double r = (u == DependenceGraph::root()) ? 1.0 : survive;
            all_paths_broken *= 1.0 - r * result.q[u];
        }
        result.q[v] = 1.0 - all_paths_broken;
    }
    result.q_min = min_over_non_root(result.q);
    return result;
}

AuthProb exact_auth_prob(const DependenceGraph& dg, double p, std::size_t max_n) {
    MCAUTH_EXPECTS(p >= 0.0 && p <= 1.0);
    const std::size_t n = dg.packet_count();
    MCAUTH_EXPECTS(n <= max_n);
    MCAUTH_EXPECTS(n >= 1 && n <= 63);

    if (p >= 1.0) {
        // The conditional q_v = P{verifiable | received} is 0/0 here; its
        // limit as p -> 1 is 1 exactly when the root itself carries v (a
        // path with no interior vertices). Matches the recurrence engine.
        AuthProb result;
        result.q.assign(n, 0.0);
        result.q[DependenceGraph::root()] = 1.0;
        for (std::size_t v = 1; v < n; ++v)
            result.q[v] = dg.graph().has_edge(DependenceGraph::root(),
                                              static_cast<VertexId>(v))
                              ? 1.0
                              : 0.0;
        result.q_min = min_over_non_root(result.q);
        return result;
    }

    // Enumerate received-subsets of the n-1 non-root vertices. Bit k of the
    // mask corresponds to vertex k+1; set bit = received.
    const std::size_t free_vertices = n - 1;
    const std::uint64_t mask_count = 1ULL << free_vertices;
    MCAUTH_OBS_COUNT_N("core.exact.subset_evals", mask_count);

    std::vector<double> verif_prob(n, 0.0);
    std::vector<bool> received(n, false);
    const double survive = 1.0 - p;

    for (std::uint64_t mask = 0; mask < mask_count; ++mask) {
        received[DependenceGraph::root()] = true;
        int received_count = 0;
        for (std::size_t k = 0; k < free_vertices; ++k) {
            const bool got = (mask >> k) & 1ULL;
            received[k + 1] = got;
            received_count += got ? 1 : 0;
        }
        const double prob = std::pow(survive, received_count) *
                            std::pow(p, static_cast<double>(free_vertices - received_count));
        if (prob == 0.0) continue;
        const auto verifiable = dg.verifiable_given(received);
        for (std::size_t v = 1; v < n; ++v)
            if (verifiable[v]) verif_prob[v] += prob;
    }

    AuthProb result;
    result.q.assign(n, 1.0);
    for (std::size_t v = 1; v < n; ++v) {
        // q_v = P{verifiable AND received} / P{received}.
        result.q[v] = survive > 0.0 ? verif_prob[v] / survive : 0.0;
        result.q[v] = std::min(1.0, result.q[v]);  // guard fp accumulation
    }
    result.q_min = min_over_non_root(result.q);
    return result;
}

namespace {

struct TrialCounts {
    std::vector<std::uint64_t> received;
    std::vector<std::uint64_t> verified;
};

/// One scalar shard: trials [first, first + count), each on its own RNG
/// stream derived from (seed, trial_index) — the stream contract the
/// bit-sliced engine transposes lane-for-trial. Own loss-model clone, own
/// scratch buffers; the per-trial body allocates nothing.
void run_auth_prob_shard_scalar(const DependenceGraph& dg, const LossModel& loss_proto,
                                std::uint64_t seed, std::size_t first,
                                std::size_t count, TrialCounts& counts) {
    const std::size_t n = dg.packet_count();
    counts.received.assign(n, 0);
    counts.verified.assign(n, 0);
    const auto loss = loss_proto.clone();
    VerifyScratch ws(n);

    for (std::size_t t = first; t < first + count; ++t) {
        Rng rng(exec::derive_stream_seed(seed, t));
        loss->reset();
        // Loss decisions are drawn in *transmission* order so bursty models
        // correlate adjacent transmissions, then mapped back to vertex ids.
        for (std::uint32_t pos = 0; pos < n; ++pos)
            ws.received[dg.vertex_at_send_pos(pos)] = loss->lose_next(rng) ? 0 : 1;
        dg.verifiable_into(ws);  // forces the root received
        for (std::size_t v = 1; v < n; ++v) {
            if (ws.received[v]) {
                ++counts.received[v];
                if (ws.verifiable[v]) ++counts.verified[v];
            }
        }
    }
}

/// One bit-sliced shard: a run of 64-lane batches. Per batch, sample 64
/// loss patterns into per-vertex alive words (lane l = trial
/// batch_first_trial + l, on the same per-trial stream the scalar engine
/// uses), resolve verifiability for all 64 trials in one topological sweep,
/// and accumulate counts by popcount. Ghost lanes of the ragged final batch
/// are masked out before counting.
void run_auth_prob_shard_bitsliced(const DependenceGraph& dg, const CsrView& csr,
                                   const LossModel& loss_proto,
                                   const exec::BitslicedTrials& bt, std::size_t s,
                                   TrialCounts& counts) {
    const std::size_t n = dg.packet_count();
    counts.received.assign(n, 0);
    counts.verified.assign(n, 0);
    const auto batched = loss_proto.make_batched();
    std::vector<Rng> lanes;
    std::vector<std::uint64_t> lost(n, 0);  // transmission-position major
    std::vector<std::uint64_t> alive(n, 0);
    std::vector<std::uint64_t> reach(n, 0);

    const std::size_t begin = bt.shard_batch_begin(s);
    const std::size_t end = begin + bt.shard_batches(s);
    for (std::size_t b = begin; b < end; ++b) {
        bt.seed_lanes(b, lanes);
        batched->reset();
        // Loss decisions are drawn in *transmission* order (bulk, one call
        // for the whole sequence — the Bernoulli sampler's lane-major fast
        // path lives behind this), then scattered back to vertex ids.
        batched->sample_block(lanes.data(), lost.data(), n);
        for (std::uint32_t pos = 0; pos < n; ++pos)
            alive[dg.vertex_at_send_pos(pos)] = ~lost[pos];
        // The sweep treats the root as alive regardless of its sampled word
        // (P_sign assumed delivered), exactly like verifiable_into.
        reachable_within_bitsliced(csr, DependenceGraph::root(), alive.data(),
                                   reach.data());
        const std::uint64_t active = bt.active_mask(b);
        for (std::size_t v = 1; v < n; ++v) {
            counts.received[v] += static_cast<std::uint64_t>(
                std::popcount(alive[v] & active));
            // reach[v] already has the alive bit folded in, so it is the
            // "received AND verifiable" word directly.
            counts.verified[v] += static_cast<std::uint64_t>(
                std::popcount(reach[v] & active));
        }
    }
}

}  // namespace

MonteCarloAuthProb monte_carlo_auth_prob(const DependenceGraph& dg,
                                         const LossModel& loss, std::uint64_t seed,
                                         std::size_t trials, McEngine engine) {
    MCAUTH_EXPECTS(trials >= 1);
    MCAUTH_OBS_COUNT_N("core.montecarlo.trials", trials);
    const std::size_t n = dg.packet_count();

    // Both decompositions depend only on (trials, seed), and each trial's
    // variates depend only on (seed, trial_index), so the merged counts —
    // and everything derived from them — are identical for any thread
    // count AND either engine (ordered merge of per-shard partials of
    // order-invariant integer sums).
    // Inert unless --progress / obs::set_progress_enabled: stderr-only
    // throughput line + exec.progress.* gauges, ticked per finished shard.
    obs::ProgressReporter progress("mc.authprob", trials);
    std::vector<TrialCounts> parts;
    if (engine == McEngine::kBitsliced) {
        const CsrView csr(dg.graph());
        const exec::BitslicedTrials bt(trials, seed);
        MCAUTH_OBS_COUNT_N("core.bitslice.batches", bt.batch_count());
        MCAUTH_OBS_COUNT_N("core.bitslice.ghost_lanes",
                           bt.batch_count() * exec::BitslicedTrials::kLanes - trials);
        MCAUTH_OBS_COUNT_N("core.bitslice.word_ops",
                           bt.batch_count() * (dg.graph().edge_count() + n));
        parts.resize(bt.shard_count());
        exec::ThreadPool::global().parallel_for(
            bt.shard_count(), 1, [&](std::size_t begin, std::size_t end) {
                for (std::size_t s = begin; s < end; ++s) {
                    run_auth_prob_shard_bitsliced(dg, csr, loss, bt, s, parts[s]);
                    progress.tick(bt.shard_batches(s) * exec::BitslicedTrials::kLanes);
                }
            });
    } else {
        const exec::ShardedTrials shards(trials, seed);
        parts.resize(shards.shard_count());
        exec::ThreadPool::global().parallel_for(
            shards.shard_count(), 1, [&](std::size_t begin, std::size_t end) {
                for (std::size_t s = begin; s < end; ++s) {
                    run_auth_prob_shard_scalar(dg, loss, seed, shards.shard_begin(s),
                                               shards.shard_trials(s), parts[s]);
                    progress.tick(shards.shard_trials(s));
                }
            });
    }

    std::vector<std::uint64_t> received_count(n, 0);
    std::vector<std::uint64_t> verified_count(n, 0);
    for (const TrialCounts& part : parts) {
        for (std::size_t v = 1; v < n; ++v) {
            received_count[v] += part.received[v];
            verified_count[v] += part.verified[v];
        }
    }

    MonteCarloAuthProb result;
    result.trials = trials;
    result.q.assign(n, 1.0);
    result.halfwidth.assign(n, 0.0);  // root stays 0: exact by assumption
    std::size_t argmin = 0;
    for (std::size_t v = 1; v < n; ++v) {
        // 0/0 — the vertex never arrived, the conditional is unresolved.
        result.q[v] = received_count[v] == 0
                          ? std::numeric_limits<double>::quiet_NaN()
                          : static_cast<double>(verified_count[v]) /
                                static_cast<double>(received_count[v]);
        result.halfwidth[v] = received_count[v] == 0
                                  ? std::numeric_limits<double>::quiet_NaN()
                                  : wilson_halfwidth(result.q[v], received_count[v]);
        if (result.q[v] < result.q[argmin]) argmin = v;  // NaN never selected
    }
    result.q_min = min_over_non_root(result.q);
    if (argmin != 0) result.q_min_halfwidth = result.halfwidth[argmin];
    return result;
}

AuthProbBounds bounds_auth_prob(const DependenceGraph& dg, double p,
                                double path_count_cap) {
    MCAUTH_EXPECTS(p >= 0.0 && p <= 1.0);
    const std::size_t n = dg.packet_count();
    const auto dist = bfs_distances(dg.graph(), DependenceGraph::root());
    const auto paths = count_paths(dg.graph(), DependenceGraph::root(), path_count_cap);
    const double survive = 1.0 - p;

    AuthProbBounds bounds;
    bounds.lower.assign(n, 1.0);
    bounds.upper.assign(n, 1.0);
    for (std::size_t v = 1; v < n; ++v) {
        if (dist[v] < 0) {  // unreachable: never verifiable
            bounds.lower[v] = bounds.upper[v] = 0.0;
            continue;
        }
        // Interior vertices of the shortest path exclude root and target.
        const int interior = dist[v] - 1;
        const double single_path = std::pow(survive, interior);
        bounds.lower[v] = single_path;  // worst case: all paths nested in one
        // Best case: `paths[v]` disjoint paths, each as short as the
        // shortest — each fails independently with prob 1 - (1-p)^L.
        bounds.upper[v] = 1.0 - std::pow(1.0 - single_path, paths[v]);
    }
    bounds.q_min_lower = min_over_non_root(bounds.lower);
    bounds.q_min_upper = min_over_non_root(bounds.upper);
    return bounds;
}

}  // namespace mcauth

#include "core/delay_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace mcauth {

std::vector<double> completion_times(const DependenceGraph& dg,
                                     const std::vector<double>& arrival) {
    const std::size_t n = dg.packet_count();
    MCAUTH_EXPECTS(arrival.size() == n);
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> cost(n, kInf);

    using Entry = std::pair<double, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    cost[DependenceGraph::root()] = arrival[DependenceGraph::root()];
    heap.emplace(cost[DependenceGraph::root()], DependenceGraph::root());

    while (!heap.empty()) {
        const auto [c, u] = heap.top();
        heap.pop();
        if (c != cost[u]) continue;
        for (VertexId v : dg.graph().successors(u)) {
            const double candidate = std::max(c, arrival[v]);
            if (candidate < cost[v]) {
                cost[v] = candidate;
                heap.emplace(candidate, v);
            }
        }
    }
    return cost;
}

DelayDistribution receiver_delay_distribution(const DependenceGraph& dg,
                                              const SchemeParams& params,
                                              DelayModel& jitter, Rng& rng,
                                              std::size_t trials) {
    MCAUTH_EXPECTS(trials >= 1);
    const std::size_t n = dg.packet_count();
    std::vector<std::vector<double>> samples(n);
    for (auto& s : samples) s.reserve(trials);

    std::vector<double> arrival(n);
    for (std::size_t t = 0; t < trials; ++t) {
        for (VertexId v = 0; v < n; ++v)
            arrival[v] = static_cast<double>(dg.send_pos(v)) * params.t_transmit +
                         jitter.sample(rng);
        const auto completion = completion_times(dg, arrival);
        for (VertexId v = 0; v < n; ++v) {
            if (!std::isfinite(completion[v])) continue;  // unreachable vertex
            samples[v].push_back(completion[v] - arrival[v]);
        }
    }

    DelayDistribution out;
    out.mean.assign(n, 0.0);
    out.p95.assign(n, 0.0);
    for (VertexId v = 0; v < n; ++v) {
        if (samples[v].empty()) continue;
        double sum = 0.0;
        for (double x : samples[v]) sum += x;
        out.mean[v] = sum / static_cast<double>(samples[v].size());
        out.p95[v] = quantile(samples[v], 0.95);
        out.worst_mean = std::max(out.worst_mean, out.mean[v]);
        out.worst_p95 = std::max(out.worst_p95, out.p95[v]);
    }
    return out;
}

}  // namespace mcauth

#include "core/delay_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "exec/sharded.hpp"
#include "exec/thread_pool.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace mcauth {

std::vector<double> completion_times(const DependenceGraph& dg,
                                     const std::vector<double>& arrival) {
    const std::size_t n = dg.packet_count();
    MCAUTH_EXPECTS(arrival.size() == n);
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> cost(n, kInf);

    using Entry = std::pair<double, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    cost[DependenceGraph::root()] = arrival[DependenceGraph::root()];
    heap.emplace(cost[DependenceGraph::root()], DependenceGraph::root());

    while (!heap.empty()) {
        const auto [c, u] = heap.top();
        heap.pop();
        if (c != cost[u]) continue;
        for (VertexId v : dg.graph().successors(u)) {
            const double candidate = std::max(c, arrival[v]);
            if (candidate < cost[v]) {
                cost[v] = candidate;
                heap.emplace(candidate, v);
            }
        }
    }
    return cost;
}

void completion_times_topo(const DependenceGraph& dg,
                           const std::vector<VertexId>& order,
                           const std::vector<double>& arrival,
                           std::vector<double>& out) {
    const std::size_t n = dg.packet_count();
    MCAUTH_EXPECTS(order.size() == n && arrival.size() == n);
    constexpr double kInf = std::numeric_limits<double>::infinity();
    out.assign(n, kInf);
    out[DependenceGraph::root()] = arrival[DependenceGraph::root()];
    for (VertexId u : order) {
        const double c = out[u];
        if (c == kInf) continue;  // unreachable
        for (VertexId v : dg.graph().successors(u)) {
            const double candidate = std::max(c, arrival[v]);
            if (candidate < out[v]) out[v] = candidate;
        }
    }
}

namespace {

/// One shard of delay samples, flat layout [v * shard_trials + t];
/// unreachable vertices hold +inf and are skipped at merge time.
void run_delay_shard(const DependenceGraph& dg, const SchemeParams& params,
                     const std::vector<VertexId>& order, const DelayModel& jitter_proto,
                     Rng rng, std::size_t shard_trials, std::vector<double>& samples) {
    const std::size_t n = dg.packet_count();
    samples.assign(n * shard_trials, std::numeric_limits<double>::infinity());
    const auto jitter = jitter_proto.clone();
    std::vector<double> arrival(n);
    std::vector<double> completion;
    completion.reserve(n);

    for (std::size_t t = 0; t < shard_trials; ++t) {
        for (VertexId v = 0; v < n; ++v)
            arrival[v] = static_cast<double>(dg.send_pos(v)) * params.t_transmit +
                         jitter->sample(rng);
        completion_times_topo(dg, order, arrival, completion);
        for (VertexId v = 0; v < n; ++v) {
            if (!std::isfinite(completion[v])) continue;  // unreachable vertex
            samples[v * shard_trials + t] = completion[v] - arrival[v];
        }
    }
}

}  // namespace

DelayDistribution receiver_delay_distribution(const DependenceGraph& dg,
                                              const SchemeParams& params,
                                              const DelayModel& jitter,
                                              std::uint64_t seed, std::size_t trials) {
    MCAUTH_EXPECTS(trials >= 1);
    const std::size_t n = dg.packet_count();
    const auto order = topological_order(dg.graph());
    MCAUTH_EXPECTS(order.has_value());  // Definition 1 graphs are DAGs

    const exec::ShardedTrials shards(trials, seed);
    std::vector<std::vector<double>> parts(shards.shard_count());
    exec::ThreadPool::global().parallel_for(
        shards.shard_count(), 1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t s = begin; s < end; ++s)
                run_delay_shard(dg, params, *order, jitter, shards.shard_rng(s),
                                shards.shard_trials(s), parts[s]);
        });

    DelayDistribution out;
    out.mean.assign(n, 0.0);
    out.p95.assign(n, 0.0);
    std::vector<double> merged;
    merged.reserve(trials);
    for (VertexId v = 0; v < n; ++v) {
        // Ordered merge: shard s contributes its trials in shard order, so
        // the per-vertex sample sequence matches the serial trial order.
        merged.clear();
        for (std::size_t s = 0; s < shards.shard_count(); ++s) {
            const std::size_t st = shards.shard_trials(s);
            for (std::size_t t = 0; t < st; ++t) {
                const double x = parts[s][v * st + t];
                if (std::isfinite(x)) merged.push_back(x);
            }
        }
        if (merged.empty()) continue;
        double sum = 0.0;
        for (double x : merged) sum += x;
        out.mean[v] = sum / static_cast<double>(merged.size());
        out.p95[v] = quantile(merged, 0.95);
        out.worst_mean = std::max(out.worst_mean, out.mean[v]);
        out.worst_p95 = std::max(out.worst_p95, out.p95[v]);
    }
    return out;
}

DelayDistribution receiver_delay_distribution(const DependenceGraph& dg,
                                              const SchemeParams& params,
                                              DelayModel& jitter, Rng& rng,
                                              std::size_t trials) {
    return receiver_delay_distribution(dg, params, static_cast<const DelayModel&>(jitter),
                                       rng.next_u64(), trials);
}

}  // namespace mcauth

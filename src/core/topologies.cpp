#include "core/topologies.hpp"

#include <numeric>
#include <string>

#include "util/check.hpp"

namespace mcauth {

namespace {

/// send_pos for schemes whose signature packet is transmitted first.
std::vector<std::uint32_t> forward_positions(std::size_t n) {
    std::vector<std::uint32_t> pos(n);
    std::iota(pos.begin(), pos.end(), 0u);
    return pos;
}

/// send_pos for schemes whose signature packet is transmitted last
/// (reversed indexing of §4.2: vertex i is sent at position n-1-i).
std::vector<std::uint32_t> reversed_positions(std::size_t n) {
    std::vector<std::uint32_t> pos(n);
    for (std::size_t i = 0; i < n; ++i) pos[i] = static_cast<std::uint32_t>(n - 1 - i);
    return pos;
}

}  // namespace

DependenceGraph make_rohatgi(std::size_t n) {
    MCAUTH_EXPECTS(n >= 2);
    DependenceGraph dg(n, forward_positions(n), "rohatgi");
    for (VertexId i = 1; i < n; ++i) dg.add_dependence(i - 1, i);
    return dg;
}

DependenceGraph make_auth_tree(std::size_t n) {
    MCAUTH_EXPECTS(n >= 2);
    DependenceGraph dg(n, forward_positions(n), "auth-tree");
    for (VertexId i = 1; i < n; ++i) dg.add_dependence(DependenceGraph::root(), i);
    return dg;
}

DependenceGraph make_offset_scheme(std::size_t n, const std::vector<std::size_t>& offsets,
                                   std::string name) {
    MCAUTH_EXPECTS(n >= 2);
    MCAUTH_EXPECTS(!offsets.empty());
    DependenceGraph dg(n, reversed_positions(n), std::move(name));
    for (std::size_t i = 1; i < n; ++i) {
        for (std::size_t off : offsets) {
            MCAUTH_EXPECTS(off >= 1);
            // Offsets overshooting the signature packet clamp to the root:
            // the signature packet carries those hashes directly (this is
            // the i.c. q_i = 1 for small i in Eq. 8/9).
            const VertexId pred =
                off >= i ? DependenceGraph::root() : static_cast<VertexId>(i - off);
            dg.add_dependence(pred, static_cast<VertexId>(i));
        }
    }
    return dg;
}

DependenceGraph make_emss(std::size_t n, std::size_t m, std::size_t d) {
    MCAUTH_EXPECTS(m >= 1);
    MCAUTH_EXPECTS(d >= 1);
    std::vector<std::size_t> offsets;
    offsets.reserve(m);
    for (std::size_t k = 0; k < m; ++k) offsets.push_back(1 + k * d);
    return make_offset_scheme(n, offsets,
                              "emss(m=" + std::to_string(m) + ",d=" + std::to_string(d) + ")");
}

DependenceGraph make_augmented_chain(std::size_t n, std::size_t a, std::size_t b) {
    MCAUTH_EXPECTS(n >= 2);
    MCAUTH_EXPECTS(a >= 2);  // a == 1 would duplicate the previous-chain link
    MCAUTH_EXPECTS(b >= 1);
    const std::size_t g = b + 1;  // group = 1 chain packet + b inserted packets
    DependenceGraph dg(n, reversed_positions(n),
                       "ac(a=" + std::to_string(a) + ",b=" + std::to_string(b) + ")");
    for (std::size_t i = 1; i < n; ++i) {
        const std::size_t x = i / g;
        const std::size_t y = i % g;
        if (y == 0) {
            // First-level chain vertex: carried by the previous chain vertex
            // and the a-th previous one (clamped to the root, which yields
            // the q(x,0) = 1 initial condition for x <= a in Eq. 10).
            dg.add_dependence(static_cast<VertexId>((x - 1) * g), static_cast<VertexId>(i));
            const std::size_t far = x >= a ? (x - a) * g : 0;
            dg.add_dependence(static_cast<VertexId>(far), static_cast<VertexId>(i));
        } else {
            // Second-level vertex (x, y): carried by its zig-zag neighbour
            // — (x, y+1), or the next chain vertex (x+1, 0) when y == b —
            // and by its own group's chain vertex (x, 0). When the block
            // ends mid-group the neighbour does not exist; the signature
            // packet carries that hash instead (the same root clamp EMSS
            // uses), preserving the construction's "every inserted packet
            // is linked to two other packets" invariant.
            const std::size_t neighbour = (y < b) ? i + 1 : (x + 1) * g;
            dg.add_dependence(
                static_cast<VertexId>(neighbour < n ? neighbour : 0),
                static_cast<VertexId>(i));
            dg.add_dependence(static_cast<VertexId>(x * g), static_cast<VertexId>(i));
        }
    }
    return dg;
}

DependenceGraph make_random_scheme(std::size_t n, double edge_prob, Rng& rng,
                                   std::size_t max_extra_per_vertex) {
    MCAUTH_EXPECTS(n >= 2);
    MCAUTH_EXPECTS(edge_prob >= 0.0 && edge_prob <= 1.0);
    DependenceGraph dg(n, reversed_positions(n), "random");
    for (VertexId i = 1; i < n; ++i) {
        // Spine edge keeps every vertex reachable (Definition 1); the paper
        // notes purely probabilistic placement can strand vertices.
        dg.add_dependence(i - 1, i);
        std::size_t extra = 0;
        for (VertexId j = 0; j + 1 < i && extra < max_extra_per_vertex; ++j) {
            if (rng.bernoulli(edge_prob)) {
                if (dg.add_dependence(j, i)) ++extra;
            }
        }
    }
    return dg;
}

}  // namespace mcauth

// The dependence-graph of Definition 1 — the paper's central object.
//
// Vertices are the packets of one block; the distinguished root is P_sign
// (the packet carrying the amortized digital signature, assumed always
// delivered). A directed edge u -> v records the dependence relation
// P_u ↪ P_v: packet u carries verification material for packet v (in hash
// chaining, the hash of v is embedded in u). Packet v — given that it
// arrives — is verifiable iff at least one root->v path exists whose
// interior vertices all arrive.
//
// Indexing convention (matches §4.2 of the paper): vertex 0 is P_sign and
// vertex ids increase with "distance" from the signature packet in sequence
// number. Because schemes differ in where the signature travels (first
// packet for Rohatgi, last for EMSS/AC), each vertex additionally carries
// its *transmission position* send_pos in [0, n); edge labels and all
// delay/buffer metrics are derived from send_pos, which keeps one graph
// type valid for both families.
#pragma once

#include <string>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"

namespace mcauth {

/// Reusable per-thread workspace for the Monte-Carlo verifiability hot
/// path: one of these per shard keeps the trial loop allocation-free
/// (DependenceGraph::verifiable_into). Byte masks instead of vector<bool>
/// so reads/writes are single stores with no bit arithmetic.
struct VerifyScratch {
    explicit VerifyScratch(std::size_t packet_count)
        : received(packet_count, 0), verifiable(packet_count, 0) {
        stack.reserve(packet_count);
    }

    std::vector<std::uint8_t> received;    // input: caller fills per trial
    std::vector<std::uint8_t> verifiable;  // output of verifiable_into
    std::vector<VertexId> stack;           // DFS scratch
};

class DependenceGraph {
public:
    /// `send_pos[v]` is the transmission position of vertex v; must be a
    /// permutation of [0, n). Vertex 0 is the root (P_sign).
    DependenceGraph(std::size_t packet_count, std::vector<std::uint32_t> send_pos,
                    std::string scheme_name);

    static constexpr VertexId root() noexcept { return 0; }

    std::size_t packet_count() const noexcept { return graph_.vertex_count(); }
    const std::string& scheme_name() const noexcept { return name_; }

    /// Add the dependence edge u ↪ v (u carries the hash of v).
    /// Returns false if the edge already exists.
    bool add_dependence(VertexId u, VertexId v) { return graph_.add_edge(u, v); }

    const Digraph& graph() const noexcept { return graph_; }

    std::uint32_t send_pos(VertexId v) const;
    /// Vertex transmitted at position `pos`.
    VertexId vertex_at_send_pos(std::uint32_t pos) const;

    /// The paper's edge label l_uv: difference of sequence (transmission)
    /// numbers. Positive means the carrier u is transmitted after v.
    int label(VertexId u, VertexId v) const;

    /// Definition 1 validity: acyclic and every vertex reachable from the
    /// root. Probabilistically constructed graphs may violate reachability;
    /// unreachable_vertices() lists offenders for the caller to repair.
    bool is_valid() const;
    std::vector<VertexId> unreachable_vertices() const;

    /// Verifiable vertex set for a given loss pattern:
    /// received[v] == false means packet v was lost. The root is treated as
    /// received regardless (P_sign is assumed delivered, §3). A vertex is
    /// returned as verifiable iff it was received and a fully-received
    /// root-path to it exists.
    std::vector<bool> verifiable_given(const std::vector<bool>& received) const;

    /// Allocation-free verifiable_given for Monte-Carlo trial loops: reads
    /// ws.received (forcing the root received, mutating ws.received[root]),
    /// writes ws.verifiable. Buffers must be sized to packet_count() —
    /// construct the scratch with VerifyScratch(packet_count()).
    void verifiable_into(VerifyScratch& ws) const;

private:
    Digraph graph_;
    std::vector<std::uint32_t> send_pos_;
    std::vector<VertexId> pos_to_vertex_;
    std::string name_;
};

}  // namespace mcauth

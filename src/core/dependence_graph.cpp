#include "core/dependence_graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mcauth {

DependenceGraph::DependenceGraph(std::size_t packet_count,
                                 std::vector<std::uint32_t> send_pos, std::string scheme_name)
    : graph_(packet_count), send_pos_(std::move(send_pos)), name_(std::move(scheme_name)) {
    MCAUTH_EXPECTS(packet_count >= 1);
    MCAUTH_EXPECTS(send_pos_.size() == packet_count);
    pos_to_vertex_.assign(packet_count, kNoVertex);
    for (VertexId v = 0; v < packet_count; ++v) {
        MCAUTH_EXPECTS(send_pos_[v] < packet_count);
        MCAUTH_EXPECTS(pos_to_vertex_[send_pos_[v]] == kNoVertex);  // permutation
        pos_to_vertex_[send_pos_[v]] = v;
    }
}

std::uint32_t DependenceGraph::send_pos(VertexId v) const {
    MCAUTH_EXPECTS(v < packet_count());
    return send_pos_[v];
}

VertexId DependenceGraph::vertex_at_send_pos(std::uint32_t pos) const {
    MCAUTH_EXPECTS(pos < packet_count());
    return pos_to_vertex_[pos];
}

int DependenceGraph::label(VertexId u, VertexId v) const {
    return static_cast<int>(send_pos(u)) - static_cast<int>(send_pos(v));
}

bool DependenceGraph::is_valid() const {
    return is_acyclic(graph_) && unreachable_vertices().empty();
}

std::vector<VertexId> DependenceGraph::unreachable_vertices() const {
    const auto reachable = reachable_from(graph_, root());
    std::vector<VertexId> out;
    for (VertexId v = 0; v < packet_count(); ++v)
        if (!reachable[v]) out.push_back(v);
    return out;
}

std::vector<bool> DependenceGraph::verifiable_given(const std::vector<bool>& received) const {
    MCAUTH_EXPECTS(received.size() == packet_count());
    std::vector<bool> alive = received;
    alive[root()] = true;  // P_sign assumed delivered
    auto verifiable = reachable_within(graph_, root(), alive);
    // A lost packet is never "verifiable" even though a path to it may exist.
    for (VertexId v = 0; v < packet_count(); ++v)
        if (!alive[v]) verifiable[v] = false;
    return verifiable;
}

void DependenceGraph::verifiable_into(VerifyScratch& ws) const {
    const std::size_t n = packet_count();
    MCAUTH_EXPECTS(ws.received.size() == n && ws.verifiable.size() == n);
    ws.received[root()] = 1;  // P_sign assumed delivered
    reachable_within_into(graph_, root(), ws.received.data(), ws.verifiable.data(),
                          ws.stack);
    // A lost packet is never "verifiable" even though a path to it may exist.
    for (std::size_t v = 0; v < n; ++v)
        if (!ws.received[v]) ws.verifiable[v] = 0;
}

}  // namespace mcauth

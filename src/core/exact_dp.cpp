#include "core/exact_dp.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace mcauth {

// ------------------------------------------------------------ MarkovChannel

MarkovChannel MarkovChannel::bernoulli(double p) {
    MCAUTH_EXPECTS(p >= 0.0 && p <= 1.0);
    return MarkovChannel{{{1.0}}, {p}};
}

MarkovChannel MarkovChannel::gilbert_elliott(double loss_rate, double mean_burst) {
    MCAUTH_EXPECTS(loss_rate > 0.0 && loss_rate < 1.0);
    MCAUTH_EXPECTS(mean_burst >= 1.0);
    const double p_bg = 1.0 / mean_burst;
    const double p_gb = loss_rate * p_bg / (1.0 - loss_rate);
    MCAUTH_REQUIRE(p_gb <= 1.0);
    return MarkovChannel{{{1.0 - p_gb, p_gb}, {p_bg, 1.0 - p_bg}}, {0.0, 1.0}};
}

std::vector<double> MarkovChannel::stationary() const {
    const std::size_t m = states();
    MCAUTH_EXPECTS(m >= 1 && transition.size() == m);
    std::vector<double> pi(m, 1.0 / static_cast<double>(m));
    std::vector<double> next(m, 0.0);
    for (int iter = 0; iter < 20000; ++iter) {
        std::fill(next.begin(), next.end(), 0.0);
        for (std::size_t i = 0; i < m; ++i)
            for (std::size_t j = 0; j < m; ++j) next[j] += pi[i] * transition[i][j];
        double diff = 0.0;
        for (std::size_t j = 0; j < m; ++j) diff += std::abs(next[j] - pi[j]);
        pi.swap(next);
        if (diff < 1e-15) break;
    }
    return pi;
}

double MarkovChannel::stationary_loss_rate() const {
    const auto pi = stationary();
    double rate = 0.0;
    for (std::size_t s = 0; s < pi.size(); ++s) rate += pi[s] * loss_prob[s];
    return rate;
}

std::vector<std::vector<double>> MarkovChannel::reversed() const {
    const auto pi = stationary();
    const std::size_t m = states();
    std::vector<std::vector<double>> rev(m, std::vector<double>(m, 0.0));
    for (std::size_t i = 0; i < m; ++i) {
        MCAUTH_REQUIRE(pi[i] > 0.0);  // reversal needs an ergodic chain
        for (std::size_t j = 0; j < m; ++j) rev[i][j] = pi[j] * transition[j][i] / pi[i];
    }
    return rev;
}

std::unique_ptr<LossModel> MarkovChannel::to_loss_model() const {
    return std::make_unique<MarkovLoss>(transition, loss_prob, /*stationary_start=*/true);
}

// ----------------------------------------------------- transfer-matrix DP

AuthProb exact_offset_auth_prob(std::size_t n, const std::vector<std::size_t>& offsets,
                                const MarkovChannel& channel, std::size_t max_states) {
    MCAUTH_EXPECTS(n >= 2);
    MCAUTH_EXPECTS(!offsets.empty());
    const std::size_t m = channel.states();
    MCAUTH_EXPECTS(m >= 1);

    std::size_t window = 0;
    for (std::size_t a : offsets) {
        MCAUTH_EXPECTS(a >= 1);
        window = std::max(window, a);
    }
    MCAUTH_EXPECTS(window < 63);
    const std::size_t mask_count = std::size_t{1} << window;
    MCAUTH_EXPECTS(m * mask_count <= max_states);
    MCAUTH_OBS_COUNT("core.exact_dp.calls");
    MCAUTH_OBS_COUNT_N("core.exact_dp.state_transitions", (n - 1) * m * mask_count);

    // Bit (a-1) of a window mask = "vertex v-a is received AND verifiable".
    // Precompute, per vertex-depth regime, which offsets overshoot into the
    // root (always verified).
    std::uint64_t offsets_bits = 0;
    for (std::size_t a : offsets) offsets_bits |= std::uint64_t{1} << (a - 1);

    const auto pi = channel.stationary();
    const auto rev = channel.reversed();

    // dist[s * mask_count + mask] = probability of (channel state s at the
    // PREVIOUS slot, verified-window mask). Initial window: vertices <= 0
    // are the root clamp, i.e. verified -> all-ones mask.
    std::vector<double> dist(m * mask_count, 0.0);
    const std::size_t full_mask = mask_count - 1;
    for (std::size_t s = 0; s < m; ++s) dist[s * mask_count + full_mask] = pi[s];
    std::vector<double> next(dist.size(), 0.0);

    AuthProb result;
    result.q.assign(n, 1.0);

    for (std::size_t v = 1; v < n; ++v) {
        std::fill(next.begin(), next.end(), 0.0);
        // Offsets that overshoot the root at this depth are satisfied
        // unconditionally; the rest consult the window.
        bool root_covered = false;
        std::uint64_t window_bits = 0;
        for (std::size_t a : offsets) {
            if (a >= v)
                root_covered = true;
            else
                window_bits |= std::uint64_t{1} << (a - 1);
        }

        double received_prob = 0.0;
        double verified_prob = 0.0;

        for (std::size_t s = 0; s < m; ++s) {
            for (std::size_t mask = 0; mask <= full_mask; ++mask) {
                const double p_here = dist[s * mask_count + mask];
                if (p_here == 0.0) continue;
                const bool covered = root_covered || (mask & window_bits) != 0;
                const std::size_t mask_if_dead = (mask << 1) & full_mask;
                const std::size_t mask_if_verified = mask_if_dead | 1u;
                for (std::size_t s2 = 0; s2 < m; ++s2) {
                    const double p_move = p_here * rev[s][s2];
                    if (p_move == 0.0) continue;
                    const double l = channel.loss_prob[s2];
                    received_prob += p_move * (1.0 - l);
                    if (covered) {
                        verified_prob += p_move * (1.0 - l);
                        next[s2 * mask_count + mask_if_verified] += p_move * (1.0 - l);
                        next[s2 * mask_count + mask_if_dead] += p_move * l;
                    } else {
                        // Received-but-unverifiable and lost both leave the
                        // verified bit clear.
                        next[s2 * mask_count + mask_if_dead] += p_move;
                    }
                }
            }
        }
        dist.swap(next);
        result.q[v] = received_prob > 0.0 ? verified_prob / received_prob
                                          : (root_covered ? 1.0 : 0.0);
    }

    result.q_min = 1.0;
    for (std::size_t v = 1; v < n; ++v) result.q_min = std::min(result.q_min, result.q[v]);
    return result;
}

}  // namespace mcauth

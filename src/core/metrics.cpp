#include "core/metrics.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace mcauth {

std::vector<std::uint32_t> latest_needed_position(const DependenceGraph& dg) {
    // Bottleneck shortest path: cost(v) = min over root->v paths of
    // max{ send_pos(u) : u on path }. Dijkstra with max-relaxation; costs
    // only grow along edges, so the greedy extraction is exact.
    const std::size_t n = dg.packet_count();
    constexpr std::uint32_t kUnset = static_cast<std::uint32_t>(-1);
    std::vector<std::uint32_t> cost(n, kUnset);

    using Entry = std::pair<std::uint32_t, VertexId>;  // (cost, vertex)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    cost[DependenceGraph::root()] = dg.send_pos(DependenceGraph::root());
    heap.emplace(cost[DependenceGraph::root()], DependenceGraph::root());

    while (!heap.empty()) {
        const auto [c, u] = heap.top();
        heap.pop();
        if (c != cost[u]) continue;  // stale entry
        for (VertexId v : dg.graph().successors(u)) {
            const std::uint32_t candidate = std::max(c, dg.send_pos(v));
            if (cost[v] == kUnset || candidate < cost[v]) {
                cost[v] = candidate;
                heap.emplace(candidate, v);
            }
        }
    }
    // Unreachable vertices keep kUnset; callers treat them as never
    // verifiable (Definition 1 violation, possible in random constructions).
    return cost;
}

GraphMetrics compute_metrics(const DependenceGraph& dg, const SchemeParams& params) {
    GraphMetrics metrics;
    const std::size_t n = dg.packet_count();
    metrics.packet_count = n;
    metrics.edge_count = dg.graph().edge_count();
    metrics.hashes_per_packet =
        static_cast<double>(metrics.edge_count) / static_cast<double>(n);
    metrics.overhead_bytes_per_packet =
        (params.signature_bytes * params.sign_copies +
         params.hash_bytes * static_cast<double>(metrics.edge_count)) /
        static_cast<double>(n);

    for (VertexId v = 0; v < n; ++v)
        metrics.max_out_degree = std::max(metrics.max_out_degree, dg.graph().out_degree(v));

    const auto latest = latest_needed_position(dg);
    metrics.receiver_delay.assign(n, 0.0);
    for (VertexId v = 0; v < n; ++v) {
        if (latest[v] == static_cast<std::uint32_t>(-1)) continue;  // unreachable
        const double wait_slots =
            static_cast<double>(latest[v]) - static_cast<double>(dg.send_pos(v));
        metrics.receiver_delay[v] = std::max(0.0, wait_slots) * params.t_transmit;
        metrics.max_receiver_delay =
            std::max(metrics.max_receiver_delay, metrics.receiver_delay[v]);
    }

    for (const Edge& e : dg.graph().edges()) {
        const int label = dg.label(e.from, e.to);
        if (label < 0) {
            // Carrier transmitted before its target: the receiver holds the
            // carried hash until the target arrives.
            metrics.hash_buffer_span =
                std::max(metrics.hash_buffer_span, static_cast<std::size_t>(-label));
        } else {
            // Carrier transmitted after its target: the target packet waits.
            metrics.message_buffer_span =
                std::max(metrics.message_buffer_span, static_cast<std::size_t>(label));
        }
    }
    return metrics;
}

DiversityMetrics compute_diversity(const DependenceGraph& dg) {
    DiversityMetrics d;
    const std::size_t n = dg.packet_count();

    d.disjoint_paths.assign(n, 0);
    d.min_disjoint_paths = n;  // sentinel; shrinks below
    for (VertexId v = 1; v < n; ++v) {
        d.disjoint_paths[v] = vertex_disjoint_paths(dg.graph(), DependenceGraph::root(), v);
        d.min_disjoint_paths = std::min(d.min_disjoint_paths, d.disjoint_paths[v]);
    }
    if (n == 1) d.min_disjoint_paths = 0;

    const auto idom = immediate_dominators(dg.graph(), DependenceGraph::root());
    d.interior_dominator_count.assign(n, 0);
    std::vector<bool> is_critical(n, false);
    for (VertexId v = 1; v < n; ++v) {
        const auto doms = interior_dominators(idom, DependenceGraph::root(), v);
        d.interior_dominator_count[v] = doms.size();
        d.max_interior_dominators = std::max(d.max_interior_dominators, doms.size());
        for (VertexId u : doms) is_critical[u] = true;
    }
    for (VertexId v = 0; v < n; ++v)
        if (is_critical[v]) d.critical_vertices.push_back(v);
    return d;
}

}  // namespace mcauth

// Exact authentication probabilities for banded (offset-set) schemes under
// Markov-modulated loss — the paper's stated future work, done analytically.
//
// Two limitations of the paper's Eq. 9 recurrence are removed at once:
//
//   1. *Independence.* The recurrence multiplies per-predecessor failure
//      probabilities as if verification paths were disjoint; shared interior
//      vertices make them positively correlated, and at n = 1000 the error
//      is not a few percent — it is the difference between q_min ~ 0.99 and
//      q_min ~ 0 for EMSS E_{2,1} (see abl_recurrence_accuracy).
//   2. *i.i.d. loss only.* Internet loss is bursty; the paper defers Markov
//      models to future work.
//
// The fix is a transfer-matrix dynamic program. For an offset scheme
// (predecessors of vertex v are {v - a : a in A}, clamped to the root),
// verifiability of v is a deterministic function of the verified-bits of
// the previous W = max(A) vertices, so
//
//        state = (channel state) x (verified-bitmask of a W-window)
//
// is Markov, and one sweep over the vertices computes every q_i EXACTLY.
// Cost: O(n * m^2 * 2^W) for an m-state channel — exact answers at
// n = 1000 in milliseconds for the schemes the paper plots.
//
// Channel-order subtlety: loss correlation runs in *transmission* order
// (vertex n-1 first), while the window recursion runs in vertex order. A
// stationary Markov chain read backwards is again Markov with the reversed
// transition matrix P~ = diag(pi)^-1 P^T diag(pi), so the DP walks the
// reversed chain from its stationary distribution. The channel is assumed
// stationary at stream start (set MarkovLoss::stationary_start for a
// matching Monte-Carlo).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/authprob.hpp"
#include "net/loss.hpp"

namespace mcauth {

/// An m-state Markov-modulated loss channel in matrix form.
struct MarkovChannel {
    std::vector<std::vector<double>> transition;  // row-stochastic, m x m
    std::vector<double> loss_prob;                // per-state, in [0, 1]

    static MarkovChannel bernoulli(double p);
    /// Gilbert-Elliott with loss_good = 0, loss_bad = 1 at the given
    /// stationary rate and mean burst length.
    static MarkovChannel gilbert_elliott(double loss_rate, double mean_burst);

    std::size_t states() const noexcept { return loss_prob.size(); }
    std::vector<double> stationary() const;
    double stationary_loss_rate() const;
    /// Time-reversed transition matrix (w.r.t. the stationary distribution).
    std::vector<std::vector<double>> reversed() const;
    /// Sampling twin for Monte-Carlo cross-checks (stationary start).
    std::unique_ptr<LossModel> to_loss_model() const;
};

/// Exact q_i for the offset scheme make_offset_scheme(n, offsets) under the
/// given channel. Throws if 2^max(offset) * states() exceeds `max_states`
/// (the window would be too wide for the transfer-matrix state space).
AuthProb exact_offset_auth_prob(std::size_t n, const std::vector<std::size_t>& offsets,
                                const MarkovChannel& channel,
                                std::size_t max_states = std::size_t{1} << 22);

}  // namespace mcauth

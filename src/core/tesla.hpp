// TESLA analysis via the modified dependence-graph of §3.2.
//
// TESLA splits each packet into a message node P_i and a key node K_i (the
// MAC key for interval i, disclosed T_disclose later inside packet i+a).
// The signed bootstrap packet is the root: it commits to the key chain, so
// every key node hangs off it, and key node K_j authenticates every message
// node P_i with i <= j (a later key re-derives all earlier keys by walking
// the one-way chain — crypto/keychain.hpp implements exactly this).
//
// Two conditions gate verification of P_i (§3):
//   λ_i - some key K_j, j >= i, arrives: λ_i = 1 - p^(n+1-i);
//   ξ_i - P_i itself arrived before its key was disclosed (the *safety*
//         condition): ξ = Pr{ delay <= T_disclose } = Φ((T-µ)/σ) under the
//         Gaussian model of Eq. 5.
// Hence (Eq. 6-7):
//   q_i     = [1 - p^(n+1-i)] · Φ((T_disclose - µ)/σ)
//   q_min   = (1 - p) · Φ((T_disclose - µ)/σ)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/bitslice.hpp"
#include "graph/digraph.hpp"
#include "net/delay.hpp"
#include "net/loss.hpp"

namespace mcauth {

using exec::McEngine;

struct TeslaParams {
    std::size_t n = 1000;       // packets in the chain's lifetime
    double t_disclose = 1.0;    // key disclosure delay, seconds
    double mu = 0.2;            // mean end-to-end delay, seconds
    double sigma = 0.1;         // end-to-end delay std (jitter), seconds
    double p = 0.1;             // packet loss rate
    std::size_t a = 2;          // disclosure lag in packets (graph rendering)
};

struct TeslaAnalysis {
    std::vector<double> q;  // q[i-1] for packet i in [1, n]
    double q_min = 0.0;
    double xi = 0.0;  // Pr{delay <= T_disclose}, shared by all packets
};

/// Closed-form Eq. 6-7 under the Gaussian delay model.
TeslaAnalysis analyze_tesla(const TeslaParams& params);

/// Same analysis with an arbitrary delay distribution: xi = delay.cdf(T).
TeslaAnalysis analyze_tesla(const TeslaParams& params, const DelayModel& delay);

/// The inverse design problem: the smallest T_disclose achieving
/// q_min >= target on a Gaussian N(mu, sigma^2) network with loss p.
/// From Eq. 7: T = mu + sigma * Phi^-1(target / (1 - p)).
/// Returns +infinity if the target is unreachable (target >= 1 - p: loss
/// alone already caps q_min). This is the number a deployer actually needs:
/// the paper's Figs. 3-4 read backwards.
double required_disclosure_delay(double mu, double sigma, double p, double target_q_min);

struct TeslaMonteCarlo {
    /// NaN where packet i was never received across all trials (0/0,
    /// unresolved conditional); q_min skips NaN entries.
    std::vector<double> q;
    double q_min = 0.0;
    std::size_t trials = 0;
};

/// Sampled verification under arbitrary loss/delay models (the paper's
/// future-work loss models plug in here). Follows the paper's independence
/// assumption: key-carrier losses are drawn independently of data-packet
/// losses. Trial t draws from an independent stream seeded by
/// derive_stream_seed(seed, t) and work runs on the global
/// exec::ThreadPool; the result is bit-identical for any thread count and
/// for either engine (the default bit-sliced engine packs 64 trials per
/// word, with per-lane delay draws — DESIGN.md §8). Loss and delay models
/// are never mutated (cloned/batched per shard).
TeslaMonteCarlo monte_carlo_tesla(const TeslaParams& params, const LossModel& loss,
                                  const DelayModel& delay, std::uint64_t seed,
                                  std::size_t trials,
                                  McEngine engine = McEngine::kBitsliced);

/// The §3.2 / Figure 2 graph: vertex 0 is the bootstrap (root), then for
/// each packet i in [1, n] a message node and a key node. Returned with
/// label strings for DOT rendering (this variant of the dependence-graph is
/// unlabeled per the paper, and key-node reception is tied to carrier
/// packets, so quantitative analysis uses the closed form above instead).
struct TeslaGraph {
    Digraph graph;
    std::vector<std::string> labels;  // per vertex
    VertexId root = 0;

    VertexId message_node(std::size_t i) const;  // i in [1, n]
    VertexId key_node(std::size_t i) const;      // i in [1, n]
};

TeslaGraph make_tesla_graph(std::size_t n, std::size_t a);

}  // namespace mcauth

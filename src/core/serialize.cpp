#include "core/serialize.hpp"

#include <sstream>

#include "util/check.hpp"

namespace mcauth {

std::string to_text(const DependenceGraph& dg) {
    std::ostringstream out;
    out << "mcauth-dependence-graph v1\n";
    out << "name " << dg.scheme_name() << "\n";
    out << "packets " << dg.packet_count() << "\n";
    out << "sendpos";
    for (VertexId v = 0; v < dg.packet_count(); ++v) out << ' ' << dg.send_pos(v);
    out << "\n";
    for (const Edge& e : dg.graph().edges()) out << "edge " << e.from << ' ' << e.to << "\n";
    out << "end\n";
    return out.str();
}

namespace {

[[noreturn]] void fail(std::size_t line_number, const std::string& why) {
    throw std::runtime_error("dependence-graph parse error at line " +
                             std::to_string(line_number) + ": " + why);
}

}  // namespace

DependenceGraph dependence_graph_from_text(std::string_view text) {
    std::istringstream in{std::string(text)};
    std::string line;
    std::size_t line_number = 0;

    auto next_line = [&]() -> bool {
        while (std::getline(in, line)) {
            ++line_number;
            const auto first = line.find_first_not_of(" \t\r");
            if (first == std::string::npos) continue;  // blank
            if (line[first] == '#') continue;          // comment
            return true;
        }
        return false;
    };

    if (!next_line() || line.rfind("mcauth-dependence-graph v1", 0) != 0)
        fail(line_number, "missing 'mcauth-dependence-graph v1' header");

    if (!next_line() || line.rfind("name ", 0) != 0) fail(line_number, "expected 'name ...'");
    const std::string name = line.substr(5);

    if (!next_line()) fail(line_number, "expected 'packets <n>'");
    std::size_t n = 0;
    {
        std::istringstream fields(line);
        std::string keyword;
        if (!(fields >> keyword >> n) || keyword != "packets" || n == 0)
            fail(line_number, "expected 'packets <n>' with n >= 1");
    }

    if (!next_line()) fail(line_number, "expected 'sendpos ...'");
    std::vector<std::uint32_t> send_pos(n);
    {
        std::istringstream fields(line);
        std::string keyword;
        fields >> keyword;
        if (keyword != "sendpos") fail(line_number, "expected 'sendpos ...'");
        for (std::size_t i = 0; i < n; ++i) {
            if (!(fields >> send_pos[i]))
                fail(line_number, "sendpos needs exactly " + std::to_string(n) + " entries");
        }
        std::uint32_t extra = 0;
        if (fields >> extra) fail(line_number, "sendpos has too many entries");
    }

    DependenceGraph dg = [&] {
        try {
            return DependenceGraph(n, std::move(send_pos), name);
        } catch (const std::invalid_argument& err) {
            fail(line_number, std::string("invalid sendpos: ") + err.what());
        }
    }();

    bool saw_end = false;
    while (next_line()) {
        if (line.rfind("end", 0) == 0) {
            saw_end = true;
            break;
        }
        std::istringstream fields(line);
        std::string keyword;
        std::uint32_t u = 0, v = 0;
        if (!(fields >> keyword >> u >> v) || keyword != "edge")
            fail(line_number, "expected 'edge <u> <v>' or 'end'");
        if (u >= n || v >= n) fail(line_number, "edge endpoint out of range");
        if (u == v) fail(line_number, "self-loop");
        dg.add_dependence(u, v);  // duplicate edges are silently merged
    }
    if (!saw_end) fail(line_number, "missing 'end'");

    if (!is_acyclic(dg.graph())) fail(line_number, "graph has a cycle");
    if (!dg.unreachable_vertices().empty())
        fail(line_number, "vertices unreachable from the root (Definition 1)");
    return dg;
}

}  // namespace mcauth

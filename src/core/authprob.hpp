// Authentication-probability engines over dependence-graphs.
//
// q_i = Pr{ P_i verifiable | P_i received } (§3). Four engines, in
// increasing generality and decreasing precision-per-cost:
//
//   * recurrence_auth_prob - generalizes the paper's recurrences (Eq. 8-10)
//     to any DAG: in topological order,
//         q~_root = 1,   q~_v = 1 - prod_{u in pred(v)} (1 - r_u q~_u),
//     with r_root = 1 (P_sign always delivered) and r_u = 1 - p otherwise.
//     On EMSS topologies this is *exactly* Eq. 8/9, on augmented chains
//     Eq. 10, and on Rohatgi the closed form (1-p)^{i-1-[root adj]}. Like the
//     paper's recurrences it treats the per-predecessor verification events
//     as independent, which overcounts when paths share interior vertices;
//     the abl_recurrence_accuracy bench quantifies the error.
//
//   * exact_auth_prob - exhaustive enumeration over loss subsets (Bernoulli
//     loss only, n <= ~24): ground truth for tests and the ablation.
//
//   * monte_carlo_auth_prob - sampled loss patterns under ANY LossModel
//     (this is how the paper's "future work" Markov-loss analysis is done).
//
//   * bounds_auth_prob - the closed-form bounds of Eq. 1 from the shortest
//     verification path and the path multiplicity:
//         (1-p)^L  <=  q_i  <=  1 - [1 - (1-p)^L]^K
//     where L = interior length of the shortest root->i path and K = number
//     of root->i paths (the best case: all paths disjoint and as short as
//     the shortest).
#pragma once

#include <cstdint>
#include <vector>

#include "core/dependence_graph.hpp"
#include "exec/bitslice.hpp"
#include "net/loss.hpp"

namespace mcauth {

using exec::McEngine;

struct AuthProb {
    std::vector<double> q;  // per vertex; q[0] (root) == 1
    double q_min = 1.0;     // min over non-root vertices
};

AuthProb recurrence_auth_prob(const DependenceGraph& dg, double p);

/// Exact by enumeration; requires packet_count() <= max_n (cost 2^(n-1)).
AuthProb exact_auth_prob(const DependenceGraph& dg, double p, std::size_t max_n = 24);

struct MonteCarloAuthProb {
    /// Per-vertex conditional estimate; NaN where the vertex was never
    /// received across all trials (0/0 — unresolved, like
    /// SimStats::auth_fraction()). q_min skips NaN entries.
    std::vector<double> q;
    /// Per-vertex 95% Wilson half-width of q[v] (NaN where q[v] is NaN;
    /// 0 at the root, which is exact by assumption).
    std::vector<double> halfwidth;
    double q_min = 1.0;
    double q_min_halfwidth = 0.0;  // == halfwidth[argmin]
    std::size_t trials = 0;
};

/// Sampled q under any LossModel. Trial t draws its variates from an
/// independent stream seeded by derive_stream_seed(seed, t), so the merged
/// counts depend only on (dg, loss, seed, trials) — not on the thread
/// count, the shard decomposition, or the engine: the default bit-sliced
/// engine (64 trials per word, exec/bitslice.hpp + graph/csr.hpp) and the
/// scalar reference produce bit-identical results (DESIGN.md §8). Work is
/// fanned across the global exec::ThreadPool with an ordered merge. The
/// loss model is never mutated: the scalar engine clones it per shard and
/// resets per trial, the bit-sliced engine samples its make_batched() form
/// reset per batch.
MonteCarloAuthProb monte_carlo_auth_prob(const DependenceGraph& dg,
                                         const LossModel& loss, std::uint64_t seed,
                                         std::size_t trials,
                                         McEngine engine = McEngine::kBitsliced);

struct AuthProbBounds {
    std::vector<double> lower;
    std::vector<double> upper;
    double q_min_lower = 0.0;
    double q_min_upper = 1.0;
};

AuthProbBounds bounds_auth_prob(const DependenceGraph& dg, double p,
                                double path_count_cap = 1e6);

}  // namespace mcauth

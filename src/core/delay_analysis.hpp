// The complete Eq. 4: receiver delay = deterministic pacing wait + a random
// component from network jitter and reordering.
//
// core/metrics.hpp computes the deterministic part (t_d) assuming in-order
// arrival. On a jittery network even a sign-first chain (t_d = 0) waits: a
// needed earlier packet can arrive after the packet it authenticates. The
// paper writes the total as D_worst = t_d + t_r(P_k) - t_r(P_i) with the
// pdf from the joint delay distribution; we evaluate the *exact* per-packet
// completion time distribution by Monte-Carlo over delay draws on the
// dependence-graph (loss-free, like Eq. 4):
//
//   arrival(v)    = send_pos(v) * T_transmit + jitter_v
//   completion(v) = min over root->v paths P of max_{u in P} arrival(u)
//   delay(v)      = completion(v) - arrival(v)      (>= 0)
//
// The inner min-max is a bottleneck shortest path with random weights,
// re-solved per draw. Applies to chained schemes; individually-verifiable
// schemes (tree, sign-each) have identically zero delay by construction and
// are not modeled by a root-path graph here.
#pragma once

#include <cstddef>
#include <vector>

#include "core/dependence_graph.hpp"
#include "core/metrics.hpp"
#include "net/delay.hpp"
#include "util/rng.hpp"

namespace mcauth {

struct DelayDistribution {
    std::vector<double> mean;  // per vertex, seconds
    std::vector<double> p95;   // per vertex
    double worst_mean = 0.0;   // max over vertices of mean
    double worst_p95 = 0.0;    // max over vertices of p95
};

/// Bottleneck completion times for one arrival-time assignment:
/// out[v] = min over root->v paths of the latest arrival on the path
/// (>= arrival[v]); unreachable vertices get +inf.
std::vector<double> completion_times(const DependenceGraph& dg,
                                     const std::vector<double>& arrival);

/// The allocation-free core of the Monte-Carlo loop: same values as
/// completion_times (bit-identical — min/max are exact), but a single
/// relaxation pass over a precomputed topological order instead of a heap,
/// writing into a caller-owned buffer. `order` must be a topological order
/// of dg.graph(); `out` is resized to packet_count().
void completion_times_topo(const DependenceGraph& dg,
                           const std::vector<VertexId>& order,
                           const std::vector<double>& arrival,
                           std::vector<double>& out);

/// Trials are sharded deterministically from (seed, shard_index) and fanned
/// across the global exec::ThreadPool with an ordered merge: bit-identical
/// results for any thread count. The jitter model is cloned per shard.
DelayDistribution receiver_delay_distribution(const DependenceGraph& dg,
                                              const SchemeParams& params,
                                              const DelayModel& jitter,
                                              std::uint64_t seed,
                                              std::size_t trials = 2000);

/// Compatibility shim: draws the base seed from `rng` and runs the seeded
/// engine above.
DelayDistribution receiver_delay_distribution(const DependenceGraph& dg,
                                              const SchemeParams& params,
                                              DelayModel& jitter, Rng& rng,
                                              std::size_t trials = 2000);

}  // namespace mcauth

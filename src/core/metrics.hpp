// Graph-derived scheme metrics (Equations 2-5 and the diversity metrics).
//
// Everything here is read off the dependence-graph exactly as §3 of the
// paper prescribes:
//
//   overhead   - hashes/packet = |E| / n (Eq. 2); bytes/packet adds the
//                (possibly retransmitted) signature (Eq. 3).
//   delay      - the deterministic receiver delay of packet v is the wait
//                until the *last-transmitted* packet on its best
//                verification path arrives (Eq. 4). "Best" minimizes that
//                latest position — a bottleneck-shortest-path problem.
//   buffers    - Eq. 5 from edge labels: an edge whose carrier is sent
//                *before* its target makes the receiver hold a hash; a
//                carrier sent *after* its target makes it hold the packet.
//   diversity  - beyond the paper's bounds: Menger vertex-disjoint path
//                counts (how many simultaneous losses verification provably
//                survives) and dominator counts (interior single points of
//                failure).
//
// Note for individually-verifiable schemes (Wong–Lam trees): their real
// overhead is carried inside each packet (log n hashes + signature), which
// the dependence-graph star cannot express; use the auth codec's measured
// wire sizes for those (bench/fig10 does).
#pragma once

#include <cstdint>
#include <vector>

#include "core/dependence_graph.hpp"

namespace mcauth {

struct SchemeParams {
    double hash_bytes = 16.0;        // l_hash: 2003-era truncated hash
    double signature_bytes = 128.0;  // l_sign: RSA-1024
    double t_transmit = 0.01;        // pacing interval, seconds/packet
    double sign_copies = 1.0;        // 1/p_s retransmissions of P_sign (Eq. 3)
};

struct GraphMetrics {
    std::size_t packet_count = 0;
    std::size_t edge_count = 0;
    double hashes_per_packet = 0.0;          // Eq. 2
    double overhead_bytes_per_packet = 0.0;  // Eq. 3
    std::size_t max_out_degree = 0;          // worst single-packet hash load

    std::vector<double> receiver_delay;  // Eq. 4 per vertex, seconds
    double max_receiver_delay = 0.0;

    std::size_t hash_buffer_span = 0;     // Eq. 5, carrier-before-target edges
    std::size_t message_buffer_span = 0;  // Eq. 5, carrier-after-target edges
};

GraphMetrics compute_metrics(const DependenceGraph& dg, const SchemeParams& params);

struct DiversityMetrics {
    std::vector<std::size_t> disjoint_paths;  // per vertex (root entry = 0)
    std::size_t min_disjoint_paths = 0;       // over non-root vertices

    std::vector<std::size_t> interior_dominator_count;  // per vertex
    std::size_t max_interior_dominators = 0;
    /// Vertices that dominate at least one other non-root vertex — losing
    /// any of these severs every verification path of someone downstream.
    std::vector<VertexId> critical_vertices;
};

/// O(n * maxflow) — intended for n up to a few thousand.
DiversityMetrics compute_diversity(const DependenceGraph& dg);

/// Eq. 4 helper: for each vertex, the minimum over root-paths of the latest
/// transmission position on the path (the bottleneck shortest path).
std::vector<std::uint32_t> latest_needed_position(const DependenceGraph& dg);

}  // namespace mcauth

#include "exec/thread_pool.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace mcauth::exec {

namespace {

// A chunk body running inside a pool job must not submit a nested parallel
// job (the pool runs one job at a time); nested calls degrade to inline
// serial execution instead.
thread_local bool in_pool_job = false;

}  // namespace

std::size_t hardware_threads() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads) {
    const std::size_t lanes = threads == 0 ? 1 : threads;
    workers_.reserve(lanes - 1);
    for (std::size_t i = 0; i + 1 < lanes; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        wake_.wait(lock, [&] { return stop_ || (current_ != nullptr && epoch_ != seen); });
        if (stop_) return;
        seen = epoch_;
        const std::shared_ptr<Job> job = current_;  // ref keeps job alive
        lock.unlock();
        in_pool_job = true;
        drain(*job, /*stolen=*/true);
        in_pool_job = false;
        lock.lock();
    }
}

std::size_t ThreadPool::drain(Job& job, bool stolen) {
    std::size_t ran = 0;
    for (;;) {
        const std::size_t c = job.next.fetch_add(1, std::memory_order_acq_rel);
        if (c >= job.chunks) break;
        MCAUTH_OBS_GAUGE_SET("exec.pool.queue_depth", job.chunks - c - 1);
        if (stolen) MCAUTH_OBS_COUNT("exec.pool.steals");
        job.run(c);
        ++ran;
        // Release the chunk's effects into `done`; the submitter's acquire
        // load of done == chunks makes every body's writes visible to it.
        if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.chunks) {
            const std::lock_guard<std::mutex> lock(mu_);
            idle_.notify_all();
        }
    }
    return ran;
}

void ThreadPool::parallel_for_chunks(std::size_t chunks,
                                     std::function<void(std::size_t)> fn) {
    if (chunks == 0) return;
    MCAUTH_OBS_COUNT("exec.pool.parallel_for.calls");
    MCAUTH_OBS_COUNT_N("exec.pool.chunks", chunks);
    if (workers_.empty() || chunks == 1 || in_pool_job) {
        for (std::size_t c = 0; c < chunks; ++c) fn(c);
        return;
    }

    auto job = std::make_shared<Job>();
    job->chunks = chunks;
    job->run = std::move(fn);
    {
        const std::lock_guard<std::mutex> lock(mu_);
        current_ = job;
        ++epoch_;
    }
    wake_.notify_all();

    in_pool_job = true;
    drain(*job, /*stolen=*/false);
    in_pool_job = false;

    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) == job->chunks;
    });
    current_.reset();  // workers still inside drain() hold their own ref
    MCAUTH_OBS_GAUGE_SET("exec.pool.queue_depth", 0);
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& body) {
    MCAUTH_EXPECTS(grain >= 1);
    if (n == 0) return;
    parallel_for_chunks(chunk_count(n, grain), [&](std::size_t c) {
        const std::size_t begin = c * grain;
        const std::size_t end = begin + grain < n ? begin + grain : n;
        body(begin, end);
    });
}

namespace {

std::mutex global_pool_mu;
std::unique_ptr<ThreadPool> global_pool;

}  // namespace

ThreadPool& ThreadPool::global() {
    const std::lock_guard<std::mutex> lock(global_pool_mu);
    if (!global_pool) {
        global_pool = std::make_unique<ThreadPool>(hardware_threads());
        MCAUTH_OBS_GAUGE_SET("exec.pool.threads", global_pool->thread_count());
    }
    return *global_pool;
}

void ThreadPool::set_global_thread_count(std::size_t threads) {
    const std::size_t lanes = threads == 0 ? hardware_threads() : threads;
    const std::lock_guard<std::mutex> lock(global_pool_mu);
    if (global_pool && global_pool->thread_count() == lanes) return;
    global_pool = std::make_unique<ThreadPool>(lanes);
    MCAUTH_OBS_GAUGE_SET("exec.pool.threads", lanes);
}

std::size_t ThreadPool::global_thread_count() { return global().thread_count(); }

}  // namespace mcauth::exec

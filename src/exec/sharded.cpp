#include "exec/sharded.hpp"

#include "util/check.hpp"

namespace mcauth::exec {

namespace {

// SplitMix64's additive constant (the golden-ratio gamma); spreads shard
// indices across the 64-bit space before the finalizer mixes them.
constexpr std::uint64_t kGoldenGamma = 0x9e3779b97f4a7c15ULL;

}  // namespace

std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t index) noexcept {
    const std::uint64_t stream = SplitMix64(seed).next();
    return SplitMix64(stream ^ (kGoldenGamma * (index + 1))).next();
}

std::uint64_t derive_stream_seed(std::uint64_t seed,
                                 std::initializer_list<std::uint64_t> path) noexcept {
    for (std::uint64_t index : path) seed = derive_stream_seed(seed, index);
    return seed;
}

ShardedTrials::ShardedTrials(std::size_t trials, std::uint64_t seed,
                             std::size_t shard_size)
    : trials_(trials), seed_(seed), shard_size_(shard_size) {
    MCAUTH_EXPECTS(shard_size_ >= 1);
    shard_count_ = (trials_ + shard_size_ - 1) / shard_size_;
    stream_ = SplitMix64(seed).next();
}

std::size_t ShardedTrials::shard_trials(std::size_t i) const noexcept {
    const std::size_t begin = shard_begin(i);
    if (begin >= trials_) return 0;
    const std::size_t rest = trials_ - begin;
    return rest < shard_size_ ? rest : shard_size_;
}

std::uint64_t ShardedTrials::shard_seed(std::size_t i) const noexcept {
    return SplitMix64(stream_ ^ (kGoldenGamma * (static_cast<std::uint64_t>(i) + 1)))
        .next();
}

}  // namespace mcauth::exec

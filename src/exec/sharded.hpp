// Deterministic sharding of Monte-Carlo trials.
//
// ShardedTrials cuts a trial budget into fixed-size shards and derives an
// independent RNG stream per shard from (seed, shard_index) through
// SplitMix64. Because the shard boundaries and shard seeds are functions of
// (trials, seed, shard_size) ONLY — never of the thread count — a
// Monte-Carlo engine that runs one shard per chunk and merges shard results
// in shard order produces bit-identical output whether the shards execute
// on 1 thread or 64. That is the determinism contract every parallel engine
// in core/ is built on (DESIGN.md §7).
//
// The shard-seeding scheme: the user seed is first expanded by one
// SplitMix64 step (decorrelating consecutive integer seeds, exactly like
// Xoshiro256ss's own seeding), then each shard's seed is one further
// SplitMix64 step of (stream ^ golden_gamma * (index + 1)). Each shard Rng
// is therefore a fresh xoshiro256** instance on its own statistically
// independent stream — the same construction as Rng::fork(), made
// index-addressable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>

#include "util/rng.hpp"

namespace mcauth::exec {

/// The (seed, index) -> stream-seed map shared by ShardedTrials and the
/// sweep benches: expand the user seed one SplitMix64 step, perturb by the
/// golden-ratio gamma times (index + 1), finalize with one more step.
/// A pure function — the foundation of the thread-count-independence
/// guarantee for every randomized grid point and trial shard.
std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t index) noexcept;

/// Nested stream carving: fold derive_stream_seed over an index path, so
/// derive_stream_seed(s, {a, b, c}) == derive(derive(derive(s, a), b), c).
/// Multi-dimensional workloads address streams by coordinates — the
/// population engine keys link samples by (link, block, lane) — and because
/// the map is pure, every shard can recompute a shared ancestor's stream
/// independently and get the identical words (DESIGN.md §13).
std::uint64_t derive_stream_seed(std::uint64_t seed,
                                 std::initializer_list<std::uint64_t> path) noexcept;

class ShardedTrials {
public:
    /// Small enough to give a 10^5-trial budget ~25 shards to balance
    /// across a pool, large enough that per-shard setup (LossModel clone,
    /// scratch buffers) is noise against thousands of trials of work.
    static constexpr std::size_t kDefaultShardSize = 4096;

    ShardedTrials(std::size_t trials, std::uint64_t seed,
                  std::size_t shard_size = kDefaultShardSize);

    std::size_t trials() const noexcept { return trials_; }
    std::uint64_t seed() const noexcept { return seed_; }
    std::size_t shard_size() const noexcept { return shard_size_; }
    /// ceil(trials / shard_size); 0 when trials == 0.
    std::size_t shard_count() const noexcept { return shard_count_; }

    /// First global trial index of shard i.
    std::size_t shard_begin(std::size_t i) const noexcept { return i * shard_size_; }
    /// Trials in shard i (== shard_size except possibly the last shard).
    std::size_t shard_trials(std::size_t i) const noexcept;

    /// The shard's RNG seed — a pure function of (seed, i).
    std::uint64_t shard_seed(std::size_t i) const noexcept;
    Rng shard_rng(std::size_t i) const noexcept { return Rng(shard_seed(i)); }

private:
    std::size_t trials_;
    std::uint64_t seed_;
    std::size_t shard_size_;
    std::size_t shard_count_;
    std::uint64_t stream_;  // SplitMix64-expanded base seed
};

}  // namespace mcauth::exec

#include "exec/bitslice.hpp"

#include "exec/sharded.hpp"
#include "util/check.hpp"

namespace mcauth::exec {

BitslicedTrials::BitslicedTrials(std::size_t trials, std::uint64_t seed,
                                 std::size_t batches_per_shard)
    : trials_(trials), seed_(seed), batches_per_shard_(batches_per_shard) {
    MCAUTH_EXPECTS(batches_per_shard_ >= 1);
    batch_count_ = (trials_ + kLanes - 1) / kLanes;
    shard_count_ = (batch_count_ + batches_per_shard_ - 1) / batches_per_shard_;
}

std::size_t BitslicedTrials::shard_batches(std::size_t s) const noexcept {
    const std::size_t begin = shard_batch_begin(s);
    if (begin >= batch_count_) return 0;
    const std::size_t rest = batch_count_ - begin;
    return rest < batches_per_shard_ ? rest : batches_per_shard_;
}

std::size_t BitslicedTrials::batch_trials(std::size_t b) const noexcept {
    const std::size_t first = batch_first_trial(b);
    if (first >= trials_) return 0;
    const std::size_t rest = trials_ - first;
    return rest < kLanes ? rest : kLanes;
}

std::uint64_t BitslicedTrials::active_mask(std::size_t b) const noexcept {
    const std::size_t count = batch_trials(b);
    return count >= kLanes ? ~0ULL : (1ULL << count) - 1;
}

std::uint64_t BitslicedTrials::trial_seed(std::size_t t) const noexcept {
    return derive_stream_seed(seed_, t);
}

void BitslicedTrials::seed_lanes(std::size_t b, std::vector<Rng>& lanes) const {
    lanes.clear();
    lanes.reserve(kLanes);
    const std::size_t first = batch_first_trial(b);
    for (std::size_t l = 0; l < kLanes; ++l) lanes.emplace_back(trial_seed(first + l));
}

}  // namespace mcauth::exec

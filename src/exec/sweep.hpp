// SweepRunner — fan independent parameter-grid points across the pool.
//
// The figure benches evaluate a function at every point of a small grid
// (loss rate x scheme, alpha x sigma, a x b, ...). Each point is
// independent and often expensive (a graph construction plus an analysis,
// or a whole Monte-Carlo run), which is exactly ElKabbany & Aslan's second
// level of parallelism. SweepRunner::map evaluates all points on the
// global (or a given) pool and returns the results IN INDEX ORDER, so
// table assembly — and therefore figure output — is byte-identical for any
// thread count. Points needing randomness must derive their seed from
// their index (exec/sharded.hpp), never share an Rng across points.
//
// Use parallel_for directly when chunk bodies share scratch state; use
// SweepRunner when every point is an isolated pure function of its index.
#pragma once

#include <cstddef>
#include <vector>

#include "exec/thread_pool.hpp"

namespace mcauth::exec {

class SweepRunner {
public:
    SweepRunner() : pool_(&ThreadPool::global()) {}
    explicit SweepRunner(ThreadPool& pool) : pool_(&pool) {}

    /// out[i] = fn(i) for i in [0, count); one grid point per chunk.
    /// T must be default-constructible; fn must be safe to call
    /// concurrently for distinct indices.
    template <typename T, typename Fn>
    std::vector<T> map(std::size_t count, Fn&& fn) const {
        std::vector<T> out(count);
        pool_->parallel_for(count, 1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
        });
        return out;
    }

    /// out[i] = fn(grid[i], i): the common explicit-grid spelling.
    template <typename T, typename Point, typename Fn>
    std::vector<T> map_grid(const std::vector<Point>& grid, Fn&& fn) const {
        return map<T>(grid.size(),
                      [&](std::size_t i) { return fn(grid[i], i); });
    }

private:
    ThreadPool* pool_;
};

}  // namespace mcauth::exec

// Bit-sliced decomposition of a Monte-Carlo trial budget: 64 trials per
// machine word.
//
// BitslicedTrials cuts `trials` into batches of 64 lanes — lane l of batch
// b is global trial b*64 + l — and groups batches into shards for the
// thread-pool fan-out, mirroring ShardedTrials. Every trial owns an
// independent RNG stream derived from (seed, trial_index) through
// derive_stream_seed, and that per-trial stream is the whole determinism
// story: a scalar engine iterating trials one at a time and a bit-sliced
// engine sampling 64 lanes per call consume EXACTLY the same variates per
// trial, so integer hit/received counts (order-invariant sums over trials)
// come out bit-identical between engines, across thread counts, and across
// any shard/batch decomposition (DESIGN.md §8).
//
// The last batch may be ragged; active_mask() has a 1 for every lane that
// corresponds to a real trial, and engines AND it in before popcount
// accumulation. Ghost lanes still sample (their streams are unused
// elsewhere), keeping the per-word sampling loop branch-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace mcauth::exec {

/// Which Monte-Carlo implementation to run. Both produce bit-identical
/// results (same per-trial RNG streams); kBitsliced is the fast path and
/// the default, kScalar is the reference the equivalence tests and the
/// perf_bitslice_mc bench compare against.
enum class McEngine { kBitsliced, kScalar };

class BitslicedTrials {
public:
    static constexpr std::size_t kLanes = 64;

    /// 64 batches (4096 trials) per shard — the same trials-per-shard as
    /// ShardedTrials::kDefaultShardSize, for the same load-balance /
    /// per-shard-setup trade-off.
    static constexpr std::size_t kDefaultBatchesPerShard = 64;

    BitslicedTrials(std::size_t trials, std::uint64_t seed,
                    std::size_t batches_per_shard = kDefaultBatchesPerShard);

    std::size_t trials() const noexcept { return trials_; }
    std::uint64_t seed() const noexcept { return seed_; }

    /// ceil(trials / 64); 0 when trials == 0.
    std::size_t batch_count() const noexcept { return batch_count_; }
    /// ceil(batch_count / batches_per_shard); 0 when trials == 0.
    std::size_t shard_count() const noexcept { return shard_count_; }

    /// First batch index of shard s.
    std::size_t shard_batch_begin(std::size_t s) const noexcept {
        return s * batches_per_shard_;
    }
    /// Batches in shard s (== batches_per_shard except possibly the last).
    std::size_t shard_batches(std::size_t s) const noexcept;

    /// Global index of the trial in lane 0 of batch b.
    std::size_t batch_first_trial(std::size_t b) const noexcept { return b * kLanes; }
    /// Real trials in batch b (== kLanes except possibly the last batch).
    std::size_t batch_trials(std::size_t b) const noexcept;
    /// Low batch_trials(b) bits set — AND into any word before popcounting
    /// so ghost lanes never reach the counts.
    std::uint64_t active_mask(std::size_t b) const noexcept;

    /// The RNG seed of global trial t — the same pure function of
    /// (seed, t) the scalar engine seeds each trial with.
    std::uint64_t trial_seed(std::size_t t) const noexcept;

    /// Fill `lanes` with the kLanes per-trial RNGs of batch b (ghost lanes
    /// included). The vector is cleared and refilled; reuse one per shard.
    void seed_lanes(std::size_t b, std::vector<Rng>& lanes) const;

private:
    std::size_t trials_;
    std::uint64_t seed_;
    std::size_t batches_per_shard_;
    std::size_t batch_count_;
    std::size_t shard_count_;
};

}  // namespace mcauth::exec

// mcauth_exec — deterministic parallel execution engine.
//
// A small fixed-size thread pool built for the Monte-Carlo and sweep
// workloads in core/ and bench/: a caller submits one chunked job at a
// time (parallel_for / parallel_reduce over an index range), the calling
// thread participates in the work, and chunks are claimed dynamically by
// an atomic cursor so stragglers self-balance.
//
// The determinism contract (see DESIGN.md §7): the *decomposition* of work
// into chunks depends only on (n, grain) — never on the thread count — and
// parallel_reduce combines per-chunk partials strictly in chunk order after
// the barrier. Any computation whose chunk bodies are pure functions of
// their index range therefore produces bit-identical results on 1 thread
// and on 64. Randomized workloads get the same guarantee by deriving
// per-chunk RNG streams from (seed, chunk_index) — see exec/sharded.hpp.
//
// A pool constructed with `threads == 1` spawns no workers at all and runs
// every job inline on the caller: `--threads=1` is exactly the serial path.
// Nested parallel_for calls from inside a chunk body also run inline (no
// deadlock, no oversubscription).
//
// Observability (obs registry):
//   exec.pool.parallel_for.calls  jobs submitted
//   exec.pool.chunks              chunks executed in total
//   exec.pool.steals              chunks claimed by a pool worker rather
//                                 than the submitting thread
//   exec.pool.queue_depth         chunks still unclaimed (gauge)
//   exec.pool.threads             configured lane count (gauge)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mcauth::exec {

/// std::thread::hardware_concurrency clamped to >= 1.
std::size_t hardware_threads() noexcept;

class ThreadPool {
public:
    /// `threads` counts execution lanes INCLUDING the submitting thread:
    /// ThreadPool(4) spawns 3 workers, ThreadPool(1) spawns none.
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Execution lanes (workers + caller); >= 1.
    std::size_t thread_count() const noexcept { return workers_.size() + 1; }

    /// Run body(begin, end) over disjoint chunks covering [0, n), each of
    /// size `grain` (last one smaller). Blocks until every chunk finished.
    /// The body must be safe to run concurrently on disjoint ranges.
    void parallel_for(std::size_t n, std::size_t grain,
                      const std::function<void(std::size_t, std::size_t)>& body);

    /// Map chunks of [0, n) through `map(begin, end) -> T`, then fold the
    /// partials IN CHUNK ORDER with `reduce(acc, partial) -> T`. The ordered
    /// fold is what makes floating-point reductions independent of the
    /// thread count.
    template <typename T, typename MapFn, typename ReduceFn>
    T parallel_reduce(std::size_t n, std::size_t grain, T init, MapFn&& map,
                      ReduceFn&& reduce) {
        const std::size_t chunks = chunk_count(n, grain);
        std::vector<T> partials(chunks);
        parallel_for_chunks(chunks, [&](std::size_t c) {
            const std::size_t begin = c * grain;
            const std::size_t end = begin + grain < n ? begin + grain : n;
            partials[c] = map(begin, end);
        });
        T acc = std::move(init);
        for (std::size_t c = 0; c < chunks; ++c)
            acc = reduce(std::move(acc), std::move(partials[c]));
        return acc;
    }

    static constexpr std::size_t chunk_count(std::size_t n, std::size_t grain) noexcept {
        return grain == 0 ? 0 : (n + grain - 1) / grain;
    }

    /// The process-wide pool (lazily built with hardware_threads() lanes).
    static ThreadPool& global();
    /// Rebuild the global pool with `threads` lanes (0 = hardware_threads()).
    /// Not safe while another thread is submitting to the global pool; call
    /// it from startup code (BenchMain does, from --threads).
    static void set_global_thread_count(std::size_t threads);
    static std::size_t global_thread_count();

private:
    struct Job {
        std::size_t chunks = 0;
        std::function<void(std::size_t)> run;  // chunk index -> work
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
    };

    /// Run fn(c) for every chunk index c in [0, chunks), work-shared across
    /// the pool; the caller participates.
    void parallel_for_chunks(std::size_t chunks, std::function<void(std::size_t)> fn);
    void worker_loop();
    /// Claim-and-run loop; returns chunks this thread executed.
    std::size_t drain(Job& job, bool stolen);

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable wake_;  // workers: a new job or stop
    std::condition_variable idle_;  // submitter: job complete
    std::shared_ptr<Job> current_;  // guarded by mu_
    std::uint64_t epoch_ = 0;       // guarded by mu_; bumped per job
    bool stop_ = false;             // guarded by mu_
};

}  // namespace mcauth::exec

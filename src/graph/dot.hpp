// Graphviz DOT export (Figure 1 / Figure 2 reproduction: the paper draws the
// dependence-graphs of each scheme; we emit them in a renderable form).
#pragma once

#include <functional>
#include <string>

#include "graph/digraph.hpp"

namespace mcauth {

struct DotOptions {
    std::string graph_name = "dependence_graph";
    /// Vertex label; default is the vertex id.
    std::function<std::string(VertexId)> vertex_label;
    /// Optional edge label (the paper labels edges with i - j).
    std::function<std::string(VertexId, VertexId)> edge_label;
    /// Vertices to visually distinguish (e.g. P_sign gets a double circle).
    std::function<bool(VertexId)> emphasize;
    bool left_to_right = true;
};

std::string to_dot(const Digraph& g, const DotOptions& options = {});

/// Compact fixed-width ASCII adjacency rendering for terminal output.
std::string to_ascii_adjacency(const Digraph& g,
                               const std::function<std::string(VertexId)>& label = {});

}  // namespace mcauth

#include "graph/dot.hpp"

namespace mcauth {

namespace {

std::string default_label(VertexId v) { return "P" + std::to_string(v); }

std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

}  // namespace

std::string to_dot(const Digraph& g, const DotOptions& options) {
    std::string out = "digraph " + options.graph_name + " {\n";
    if (options.left_to_right) out += "  rankdir=LR;\n";
    out += "  node [shape=circle, fontsize=10];\n";
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
        const std::string label =
            options.vertex_label ? options.vertex_label(v) : default_label(v);
        out += "  v" + std::to_string(v) + " [label=\"" + escape(label) + "\"";
        if (options.emphasize && options.emphasize(v)) out += ", shape=doublecircle";
        out += "];\n";
    }
    for (const Edge& e : g.edges()) {
        out += "  v" + std::to_string(e.from) + " -> v" + std::to_string(e.to);
        if (options.edge_label) {
            out += " [label=\"" + escape(options.edge_label(e.from, e.to)) + "\"]";
        }
        out += ";\n";
    }
    out += "}\n";
    return out;
}

std::string to_ascii_adjacency(const Digraph& g,
                               const std::function<std::string(VertexId)>& label) {
    std::string out;
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
        out += label ? label(v) : ("P" + std::to_string(v));
        out += " ->";
        for (VertexId w : g.successors(v)) {
            out += ' ';
            out += label ? label(w) : ("P" + std::to_string(w));
        }
        out += '\n';
    }
    return out;
}

}  // namespace mcauth

#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace mcauth {

std::optional<std::vector<VertexId>> topological_order(const Digraph& g) {
    const std::size_t n = g.vertex_count();
    std::vector<std::size_t> pending(n);
    std::deque<VertexId> ready;
    for (VertexId v = 0; v < n; ++v) {
        pending[v] = g.in_degree(v);
        if (pending[v] == 0) ready.push_back(v);
    }
    std::vector<VertexId> order;
    order.reserve(n);
    while (!ready.empty()) {
        const VertexId u = ready.front();
        ready.pop_front();
        order.push_back(u);
        for (VertexId v : g.successors(u)) {
            if (--pending[v] == 0) ready.push_back(v);
        }
    }
    if (order.size() != n) return std::nullopt;  // cycle
    return order;
}

bool is_acyclic(const Digraph& g) { return topological_order(g).has_value(); }

std::vector<bool> reachable_from(const Digraph& g, VertexId root) {
    MCAUTH_EXPECTS(root < g.vertex_count());
    std::vector<bool> seen(g.vertex_count(), false);
    std::vector<VertexId> stack{root};
    seen[root] = true;
    while (!stack.empty()) {
        const VertexId u = stack.back();
        stack.pop_back();
        for (VertexId v : g.successors(u)) {
            if (!seen[v]) {
                seen[v] = true;
                stack.push_back(v);
            }
        }
    }
    return seen;
}

std::vector<bool> reachable_within(const Digraph& g, VertexId root,
                                   const std::vector<bool>& alive) {
    MCAUTH_EXPECTS(root < g.vertex_count());
    MCAUTH_EXPECTS(alive.size() == g.vertex_count());
    std::vector<bool> seen(g.vertex_count(), false);
    std::vector<VertexId> stack{root};
    seen[root] = true;
    while (!stack.empty()) {
        const VertexId u = stack.back();
        stack.pop_back();
        for (VertexId v : g.successors(u)) {
            if (!seen[v] && alive[v]) {
                seen[v] = true;
                stack.push_back(v);
            }
        }
    }
    return seen;
}

void reachable_within_into(const Digraph& g, VertexId root, const std::uint8_t* alive,
                           std::uint8_t* seen, std::vector<VertexId>& stack) {
    const std::size_t n = g.vertex_count();
    MCAUTH_EXPECTS(root < n);
    std::fill(seen, seen + n, std::uint8_t{0});
    stack.clear();
    stack.push_back(root);
    seen[root] = 1;
    while (!stack.empty()) {
        const VertexId u = stack.back();
        stack.pop_back();
        for (VertexId v : g.successors(u)) {
            if (!seen[v] && alive[v]) {
                seen[v] = 1;
                stack.push_back(v);
            }
        }
    }
}

std::vector<int> bfs_distances(const Digraph& g, VertexId root) {
    MCAUTH_EXPECTS(root < g.vertex_count());
    std::vector<int> dist(g.vertex_count(), -1);
    std::deque<VertexId> queue{root};
    dist[root] = 0;
    while (!queue.empty()) {
        const VertexId u = queue.front();
        queue.pop_front();
        for (VertexId v : g.successors(u)) {
            if (dist[v] < 0) {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    return dist;
}

std::vector<double> count_paths(const Digraph& g, VertexId root, double cap) {
    MCAUTH_EXPECTS(root < g.vertex_count());
    const auto order = topological_order(g);
    MCAUTH_EXPECTS(order.has_value());
    std::vector<double> counts(g.vertex_count(), 0.0);
    counts[root] = 1.0;
    for (VertexId u : *order) {
        if (counts[u] == 0.0) continue;
        for (VertexId v : g.successors(u))
            counts[v] = std::min(cap, counts[v] + counts[u]);
    }
    return counts;
}

std::vector<std::vector<VertexId>> enumerate_paths(const Digraph& g, VertexId root,
                                                   VertexId target, std::size_t max_paths) {
    MCAUTH_EXPECTS(root < g.vertex_count() && target < g.vertex_count());
    MCAUTH_EXPECTS(is_acyclic(g));
    // Prune to vertices that can still reach the target (reverse DFS).
    std::vector<bool> reaches_target(g.vertex_count(), false);
    {
        std::vector<VertexId> stack{target};
        reaches_target[target] = true;
        while (!stack.empty()) {
            const VertexId u = stack.back();
            stack.pop_back();
            for (VertexId p : g.predecessors(u)) {
                if (!reaches_target[p]) {
                    reaches_target[p] = true;
                    stack.push_back(p);
                }
            }
        }
    }

    std::vector<std::vector<VertexId>> paths;
    if (!reaches_target[root]) return paths;
    std::vector<VertexId> current{root};

    // Iterative DFS with explicit successor cursors.
    std::vector<std::size_t> cursor{0};
    while (!current.empty() && paths.size() < max_paths) {
        const VertexId u = current.back();
        if (u == target) {
            paths.push_back(current);
            current.pop_back();
            cursor.pop_back();
            continue;
        }
        const auto succ = g.successors(u);
        bool advanced = false;
        while (cursor.back() < succ.size()) {
            const VertexId v = succ[cursor.back()++];
            if (reaches_target[v]) {
                current.push_back(v);
                cursor.push_back(0);
                advanced = true;
                break;
            }
        }
        if (!advanced && !current.empty() && current.back() == u) {
            current.pop_back();
            cursor.pop_back();
        }
    }
    return paths;
}

std::vector<VertexId> immediate_dominators(const Digraph& g, VertexId root) {
    MCAUTH_EXPECTS(root < g.vertex_count());
    const std::size_t n = g.vertex_count();

    // Order reachable vertices by reverse postorder of a DFS from root.
    std::vector<int> rpo_index(n, -1);
    std::vector<VertexId> rpo;
    {
        std::vector<std::uint8_t> state(n, 0);  // 0 unvisited, 1 open, 2 done
        std::vector<std::pair<VertexId, std::size_t>> stack{{root, 0}};
        state[root] = 1;
        std::vector<VertexId> postorder;
        while (!stack.empty()) {
            auto& [u, idx] = stack.back();
            const auto succ = g.successors(u);
            if (idx < succ.size()) {
                const VertexId v = succ[idx++];
                if (state[v] == 0) {
                    state[v] = 1;
                    stack.emplace_back(v, 0);
                }
            } else {
                state[u] = 2;
                postorder.push_back(u);
                stack.pop_back();
            }
        }
        rpo.assign(postorder.rbegin(), postorder.rend());
        for (std::size_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = static_cast<int>(i);
    }

    std::vector<VertexId> idom(n, kNoVertex);
    idom[root] = root;

    auto intersect = [&](VertexId a, VertexId b) {
        while (a != b) {
            while (rpo_index[a] > rpo_index[b]) a = idom[a];
            while (rpo_index[b] > rpo_index[a]) b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (VertexId u : rpo) {
            if (u == root) continue;
            VertexId new_idom = kNoVertex;
            for (VertexId p : g.predecessors(u)) {
                if (idom[p] == kNoVertex) continue;  // pred not processed/reachable
                new_idom = (new_idom == kNoVertex) ? p : intersect(p, new_idom);
            }
            if (new_idom != kNoVertex && idom[u] != new_idom) {
                idom[u] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

std::vector<VertexId> interior_dominators(const std::vector<VertexId>& idom, VertexId root,
                                          VertexId v) {
    std::vector<VertexId> out;
    if (v >= idom.size() || idom[v] == kNoVertex) return out;
    VertexId cur = idom[v];
    while (cur != root) {
        out.push_back(cur);
        cur = idom[cur];
        MCAUTH_ENSURES(cur != kNoVertex);
    }
    return out;
}

namespace {

/// Dinic max-flow specialized to unit capacities on the vertex-split network.
class UnitDinic {
public:
    explicit UnitDinic(std::size_t node_count) : head_(node_count, -1) {}

    void add_edge(int u, int v, int capacity) {
        edges_.push_back({v, head_[u], capacity});
        head_[u] = static_cast<int>(edges_.size()) - 1;
        edges_.push_back({u, head_[v], 0});
        head_[v] = static_cast<int>(edges_.size()) - 1;
    }

    std::size_t max_flow(int s, int t) {
        std::size_t flow = 0;
        while (bfs(s, t)) {
            iter_ = head_;
            while (int pushed = dfs(s, t, 1)) flow += static_cast<std::size_t>(pushed);
        }
        return flow;
    }

private:
    struct FlowEdge {
        int to;
        int next;
        int capacity;
    };

    bool bfs(int s, int t) {
        level_.assign(head_.size(), -1);
        std::deque<int> queue{s};
        level_[s] = 0;
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop_front();
            for (int e = head_[u]; e != -1; e = edges_[e].next) {
                if (edges_[e].capacity > 0 && level_[edges_[e].to] < 0) {
                    level_[edges_[e].to] = level_[u] + 1;
                    queue.push_back(edges_[e].to);
                }
            }
        }
        return level_[t] >= 0;
    }

    int dfs(int u, int t, int limit) {
        if (u == t) return limit;
        for (int& e = iter_[u]; e != -1; e = edges_[e].next) {
            FlowEdge& edge = edges_[e];
            if (edge.capacity > 0 && level_[edge.to] == level_[u] + 1) {
                const int pushed = dfs(edge.to, t, std::min(limit, edge.capacity));
                if (pushed > 0) {
                    edge.capacity -= pushed;
                    edges_[e ^ 1].capacity += pushed;
                    return pushed;
                }
            }
        }
        level_[u] = -2;  // dead end for this phase
        return 0;
    }

    std::vector<int> head_;
    std::vector<int> iter_;
    std::vector<int> level_;
    std::vector<FlowEdge> edges_;
};

}  // namespace

std::size_t vertex_disjoint_paths(const Digraph& g, VertexId s, VertexId t) {
    MCAUTH_EXPECTS(s < g.vertex_count() && t < g.vertex_count());
    MCAUTH_EXPECTS(s != t);
    const int n = static_cast<int>(g.vertex_count());
    // Node 2v = v_in, 2v+1 = v_out. Interior vertices have capacity 1
    // between in and out; s and t are uncapacitated.
    UnitDinic dinic(static_cast<std::size_t>(2 * n));
    const int inf = n + 1;
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
        const int cap = (v == s || v == t) ? inf : 1;
        dinic.add_edge(2 * static_cast<int>(v), 2 * static_cast<int>(v) + 1, cap);
    }
    for (const Edge& e : g.edges())
        dinic.add_edge(2 * static_cast<int>(e.from) + 1, 2 * static_cast<int>(e.to), 1);
    return dinic.max_flow(2 * static_cast<int>(s), 2 * static_cast<int>(t) + 1);
}

}  // namespace mcauth

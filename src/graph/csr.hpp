// CSR (compressed sparse row) packing of a Digraph, plus the bit-sliced
// reachability kernel built on it.
//
// Digraph stores one heap vector per vertex — fine for construction and the
// analytical engines, but the Monte-Carlo hot path wants the whole edge set
// in two flat arrays so a propagation sweep touches contiguous memory. A
// CsrView snapshots a Digraph into CSR form (both directions) and caches a
// topological order, which is what makes ONE propagation pass sufficient:
// every predecessor of v is finalized before v is visited, so no fixed-point
// iteration is needed on a DAG.
//
// reachable_within_bitsliced is the word-parallel counterpart of
// graph/algorithms.hpp's reachable_within: bit l of alive[v] / reach[v]
// belongs to trial lane l, and 64 independent loss patterns are resolved by
// the same AND/OR sweep (see exec/bitslice.hpp for the lane <-> trial
// mapping and DESIGN.md §8 for the contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "util/check.hpp"

namespace mcauth {

/// Immutable CSR snapshot of a DAG. Construction asserts acyclicity (the
/// cached topological order is what the bit-sliced kernel's one-pass
/// guarantee rests on).
class CsrView {
public:
    explicit CsrView(const Digraph& g) {
        const std::size_t n = g.vertex_count();
        const auto order = topological_order(g);
        MCAUTH_EXPECTS(order.has_value());  // cyclic graphs have no valid sweep order
        topo_ = *order;

        succ_offset_.resize(n + 1, 0);
        pred_offset_.resize(n + 1, 0);
        succ_.reserve(g.edge_count());
        pred_.reserve(g.edge_count());
        for (std::size_t v = 0; v < n; ++v) {
            const auto succs = g.successors(static_cast<VertexId>(v));
            succ_.insert(succ_.end(), succs.begin(), succs.end());
            succ_offset_[v + 1] = static_cast<std::uint32_t>(succ_.size());
            const auto preds = g.predecessors(static_cast<VertexId>(v));
            pred_.insert(pred_.end(), preds.begin(), preds.end());
            pred_offset_[v + 1] = static_cast<std::uint32_t>(pred_.size());
        }
    }

    std::size_t vertex_count() const noexcept { return topo_.size(); }
    std::size_t edge_count() const noexcept { return succ_.size(); }

    std::span<const VertexId> successors(VertexId v) const noexcept {
        return {succ_.data() + succ_offset_[v], succ_.data() + succ_offset_[v + 1]};
    }
    std::span<const VertexId> predecessors(VertexId v) const noexcept {
        return {pred_.data() + pred_offset_[v], pred_.data() + pred_offset_[v + 1]};
    }

    /// A topological order of all vertices (not just those reachable from
    /// any particular root).
    std::span<const VertexId> topo_order() const noexcept { return topo_; }

private:
    std::vector<std::uint32_t> succ_offset_;
    std::vector<std::uint32_t> pred_offset_;
    std::vector<VertexId> succ_;
    std::vector<VertexId> pred_;
    std::vector<VertexId> topo_;
};

/// 64-lane reachable_within: bit l of alive[v] says whether vertex v is
/// alive in trial lane l, and on return bit l of reach[v] says whether v is
/// reachable from `root` through alive vertices in that lane. Semantics per
/// lane match reachable_within exactly: the root is traversed regardless of
/// its alive bit, every other vertex needs its own alive bit AND a reachable
/// predecessor. `alive` and `reach` must hold vertex_count() words; `reach`
/// is fully overwritten. One pass in topological order suffices because
/// every predecessor's word is final before its successors are combined.
inline void reachable_within_bitsliced(const CsrView& csr, VertexId root,
                                       const std::uint64_t* alive, std::uint64_t* reach) {
    for (VertexId v : csr.topo_order()) {
        if (v == root) {
            reach[v] = ~0ULL;
            continue;
        }
        std::uint64_t from_preds = 0;
        for (VertexId u : csr.predecessors(v)) from_preds |= reach[u];
        reach[v] = from_preds & alive[v];
    }
}

}  // namespace mcauth

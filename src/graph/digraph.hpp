// A compact directed-graph container.
//
// This is the substrate under core/DependenceGraph: vertices are dense
// integer ids (packets are numbered anyway), and both out- and in-adjacency
// are maintained because the analyses walk both directions (reachability
// goes root->leaf; the recurrence engine needs predecessors).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mcauth {

using VertexId = std::uint32_t;

struct Edge {
    VertexId from;
    VertexId to;
};

class Digraph {
public:
    Digraph() = default;
    explicit Digraph(std::size_t vertex_count);

    std::size_t vertex_count() const noexcept { return out_.size(); }
    std::size_t edge_count() const noexcept { return edge_count_; }

    /// Append vertices; returns the id of the first new vertex.
    VertexId add_vertices(std::size_t count);

    /// Add edge u -> v. Parallel edges are rejected (returns false) since a
    /// packet never embeds the same hash twice; self-loops are an error.
    bool add_edge(VertexId u, VertexId v);

    bool has_edge(VertexId u, VertexId v) const;

    std::span<const VertexId> successors(VertexId u) const;
    std::span<const VertexId> predecessors(VertexId u) const;

    std::size_t out_degree(VertexId u) const { return successors(u).size(); }
    std::size_t in_degree(VertexId u) const { return predecessors(u).size(); }

    /// All edges, ordered by (from, insertion order).
    std::vector<Edge> edges() const;

private:
    std::vector<std::vector<VertexId>> out_;
    std::vector<std::vector<VertexId>> in_;
    std::size_t edge_count_ = 0;
};

}  // namespace mcauth

#include "graph/digraph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mcauth {

Digraph::Digraph(std::size_t vertex_count) : out_(vertex_count), in_(vertex_count) {}

VertexId Digraph::add_vertices(std::size_t count) {
    const auto first = static_cast<VertexId>(out_.size());
    out_.resize(out_.size() + count);
    in_.resize(in_.size() + count);
    return first;
}

bool Digraph::add_edge(VertexId u, VertexId v) {
    MCAUTH_EXPECTS(u < vertex_count() && v < vertex_count());
    MCAUTH_EXPECTS(u != v);
    if (has_edge(u, v)) return false;
    out_[u].push_back(v);
    in_[v].push_back(u);
    ++edge_count_;
    return true;
}

bool Digraph::has_edge(VertexId u, VertexId v) const {
    MCAUTH_EXPECTS(u < vertex_count() && v < vertex_count());
    // Probe the smaller of the two adjacency lists.
    if (out_[u].size() <= in_[v].size())
        return std::find(out_[u].begin(), out_[u].end(), v) != out_[u].end();
    return std::find(in_[v].begin(), in_[v].end(), u) != in_[v].end();
}

std::span<const VertexId> Digraph::successors(VertexId u) const {
    MCAUTH_EXPECTS(u < vertex_count());
    return out_[u];
}

std::span<const VertexId> Digraph::predecessors(VertexId u) const {
    MCAUTH_EXPECTS(u < vertex_count());
    return in_[u];
}

std::vector<Edge> Digraph::edges() const {
    std::vector<Edge> out;
    out.reserve(edge_count_);
    for (VertexId u = 0; u < vertex_count(); ++u)
        for (VertexId v : out_[u]) out.push_back({u, v});
    return out;
}

}  // namespace mcauth

// Graph algorithms backing the dependence-graph analyses.
//
// The paper's central observation is that scheme metrics are graph
// properties; these are the graph-theoretical tools it appeals to:
//
//   * topological order      - drives the recurrence engine (eq. 8-10);
//   * reachability (masked)  - Monte-Carlo verifiability: which packets can
//                              still be authenticated given a loss pattern;
//   * BFS distances          - shortest verification path (bounds, eq. 1);
//   * path counting/listing  - path multiplicity Θ(i) (bounds, eq. 1);
//   * vertex-disjoint paths  - Menger diversity: how many losses a packet's
//                              authentication provably survives;
//   * dominators             - single points of failure: a dominator of P_i
//                              other than the root is one packet whose loss
//                              breaks *every* verification path of P_i.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace mcauth {

inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);

/// Kahn's algorithm. nullopt if the graph has a cycle.
std::optional<std::vector<VertexId>> topological_order(const Digraph& g);

bool is_acyclic(const Digraph& g);

/// Vertices reachable from `root` (root itself included).
std::vector<bool> reachable_from(const Digraph& g, VertexId root);

/// Vertices reachable from `root` traversing only vertices where
/// `alive[v]` is true. `root` is traversed regardless of its alive bit
/// (the paper assumes P_sign is always delivered); a dead target is not
/// reported reachable.
std::vector<bool> reachable_within(const Digraph& g, VertexId root,
                                   const std::vector<bool>& alive);

/// Allocation-free reachable_within for Monte-Carlo hot loops: `alive` and
/// `seen` are byte masks of length g.vertex_count() (nonzero = true) and
/// `stack` is caller-owned scratch, all reused across calls. `seen` is
/// fully overwritten. Semantics match reachable_within exactly.
void reachable_within_into(const Digraph& g, VertexId root, const std::uint8_t* alive,
                           std::uint8_t* seen, std::vector<VertexId>& stack);

/// BFS hop distances from root; -1 where unreachable.
std::vector<int> bfs_distances(const Digraph& g, VertexId root);

/// Number of distinct root->v paths per vertex (DAG only), saturating at
/// `cap` to avoid overflow on dense graphs.
std::vector<double> count_paths(const Digraph& g, VertexId root,
                                double cap = 1e18);

/// All root->target paths as vertex sequences, stopping after `max_paths`.
/// DAG only; intended for small graphs (tests, exact analysis, figures).
std::vector<std::vector<VertexId>> enumerate_paths(const Digraph& g, VertexId root,
                                                   VertexId target,
                                                   std::size_t max_paths = 4096);

/// Immediate dominators from `root` (Cooper–Harvey–Kennedy). idom[root] ==
/// root; unreachable vertices get kNoVertex. DAG or general graph.
std::vector<VertexId> immediate_dominators(const Digraph& g, VertexId root);

/// Dominators of `v` strictly between root and v, i.e. packets whose loss
/// severs every root->v path. Empty means only the root is unavoidable.
std::vector<VertexId> interior_dominators(const std::vector<VertexId>& idom, VertexId root,
                                          VertexId v);

/// Maximum number of interior-vertex-disjoint s->t paths (Menger), computed
/// by Dinic max-flow on the vertex-split network. A direct s->t edge counts
/// as one path.
std::size_t vertex_disjoint_paths(const Digraph& g, VertexId s, VertexId t);

}  // namespace mcauth

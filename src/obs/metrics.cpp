#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>
#include <fstream>

#include "util/table.hpp"

namespace mcauth::obs {

namespace {

std::atomic<bool> obs_enabled{true};
std::atomic<bool> obs_trace_enabled{false};

std::string format_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

}  // namespace

/// Minimal JSON string escaper (metric names are ASCII identifiers, but a
/// scheme name like `emss(2,1)` must still round-trip safely).
std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
    return out;
}

bool enabled() noexcept { return obs_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { obs_enabled.store(on, std::memory_order_relaxed); }

bool trace_enabled() noexcept {
    return obs_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on) noexcept {
    obs_trace_enabled.store(on, std::memory_order_relaxed);
}

// --------------------------------------------------------- LatencyHistogram

void LatencyHistogram::record_ns(std::uint64_t ns) noexcept {
    const auto bucket = static_cast<std::size_t>(std::bit_width(ns));
    counts_[bucket < kBuckets ? bucket : kBuckets - 1].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (ns < cur && !min_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (ns > cur && !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
}

std::uint64_t LatencyHistogram::min_ns() const noexcept {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == ~std::uint64_t{0} ? 0 : m;
}

double LatencyHistogram::mean_ns() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum_ns()) / static_cast<double>(n);
}

std::uint64_t LatencyHistogram::bucket_count(std::size_t i) const {
    return counts_.at(i).load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::bucket_upper_ns(std::size_t i) {
    if (i == 0) return 0;
    if (i >= kBuckets) i = kBuckets - 1;
    return (std::uint64_t{1} << i) - 1;
}

std::uint64_t LatencyHistogram::quantile_ns(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(n);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i].load(std::memory_order_relaxed);
        if (static_cast<double>(seen) >= target && seen > 0)
            return bucket_upper_ns(i);
    }
    return bucket_upper_ns(kBuckets - 1);
}

void LatencyHistogram::reset() noexcept {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------- MetricsRegistry

Counter& MetricsRegistry::counter(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
    return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    return *it->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(std::string(name), std::make_unique<LatencyHistogram>())
                 .first;
    return *it->second;
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const noexcept {
    for (const auto& [n, v] : counters)
        if (n == name) return v;
    return fallback;
}

MetricsSnapshot delta(const MetricsSnapshot& newer, const MetricsSnapshot& older) {
    MetricsSnapshot out;
    out.counters.reserve(newer.counters.size());
    for (const auto& [name, value] : newer.counters) {
        const std::uint64_t before = older.counter_or(name, 0);
        out.counters.emplace_back(name, value >= before ? value - before : 0);
    }
    out.gauges = newer.gauges;  // levels pass through
    out.histograms.reserve(newer.histograms.size());
    for (const auto& [name, totals] : newer.histograms) {
        MetricsSnapshot::HistogramTotals before;
        for (const auto& [n, t] : older.histograms)
            if (n == name) {
                before = t;
                break;
            }
        MetricsSnapshot::HistogramTotals d;
        d.count = totals.count >= before.count ? totals.count - before.count : 0;
        d.sum_ns = totals.sum_ns >= before.sum_ns ? totals.sum_ns - before.sum_ns : 0;
        out.histograms.emplace_back(name, d);
    }
    return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_)
        snap.histograms.emplace_back(
            name, MetricsSnapshot::HistogramTotals{h->count(), h->sum_ns()});
    return snap;
}

void MetricsRegistry::reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counter_values()
    const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
    return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauge_values() const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
    return out;
}

std::vector<std::pair<std::string, const LatencyHistogram*>>
MetricsRegistry::histogram_entries() const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, const LatencyHistogram*>> out;
    out.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
    return out;
}

std::string MetricsRegistry::to_json() const {
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counter_values()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : gauge_values()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + json_escape(name) + "\": " + format_double(value);
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histogram_entries()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + json_escape(name) + "\": {";
        out += "\"count\": " + std::to_string(h->count());
        out += ", \"sum_ns\": " + std::to_string(h->sum_ns());
        out += ", \"min_ns\": " + std::to_string(h->min_ns());
        out += ", \"max_ns\": " + std::to_string(h->max_ns());
        out += ", \"mean_ns\": " + format_double(h->mean_ns());
        out += ", \"p50_ns\": " + std::to_string(h->quantile_ns(0.50));
        out += ", \"p90_ns\": " + std::to_string(h->quantile_ns(0.90));
        out += ", \"p99_ns\": " + std::to_string(h->quantile_ns(0.99));
        out += ", \"buckets\": [";
        bool first_bucket = true;
        for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
            const std::uint64_t c = h->bucket_count(i);
            if (c == 0) continue;
            if (!first_bucket) out += ", ";
            first_bucket = false;
            out += "{\"le_ns\": " + std::to_string(LatencyHistogram::bucket_upper_ns(i)) +
                   ", \"count\": " + std::to_string(c) + "}";
        }
        out += "]}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

std::string MetricsRegistry::render_table() const {
    std::string out;
    const auto counters = counter_values();
    const auto gauges = gauge_values();
    const auto histograms = histogram_entries();

    if (!counters.empty()) {
        TablePrinter table({"counter", "value"});
        for (const auto& [name, value] : counters)
            table.add_row({name, std::to_string(value)});
        out += table.render();
    }
    if (!gauges.empty()) {
        TablePrinter table({"gauge", "value"});
        for (const auto& [name, value] : gauges)
            table.add_row({name, TablePrinter::num(value, 4)});
        out += table.render();
    }
    if (!histograms.empty()) {
        TablePrinter table({"histogram", "count", "mean_us", "p50_us", "p99_us", "max_us"});
        for (const auto& [name, h] : histograms) {
            table.add_row({name, std::to_string(h->count()),
                           TablePrinter::num(h->mean_ns() / 1e3, 3),
                           TablePrinter::num(static_cast<double>(h->quantile_ns(0.50)) / 1e3, 3),
                           TablePrinter::num(static_cast<double>(h->quantile_ns(0.99)) / 1e3, 3),
                           TablePrinter::num(static_cast<double>(h->max_ns()) / 1e3, 3)});
        }
        out += table.render();
    }
    return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_json();
    return static_cast<bool>(out);
}

MetricsRegistry& registry() noexcept {
    static MetricsRegistry instance;
    return instance;
}

}  // namespace mcauth::obs

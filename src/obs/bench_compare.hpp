// Noise-aware comparison of two BENCH_*.json result files — the library
// behind tools/bench_compare (DESIGN.md §9).
//
// The comparison contract:
//
//   * Inputs must be schema-v2 files with an embedded RunManifest.
//     Pre-manifest files (the PR-2/3 era schema) are refused with an
//     explicit "regenerate" message, never a parse error.
//   * Hard incompatibilities — different bench, different seed, an entry
//     whose trial count changed — abort the comparison: such numbers are
//     provably not comparable and diffing them would manufacture noise.
//   * Soft mismatches — different CPU, compiler, flags, git revision —
//     become warnings in the report (or hard failures under strict_host):
//     the numbers still diff meaningfully, the reader just needs to know.
//   * Per entry, the gated metric is trials/sec from the min-of-repeats
//     time. The effective tolerance is rel_tol + the larger of the two
//     files' repeat spreads ((max-min)/min over seconds_repeats): a noisy
//     machine automatically widens its own gate instead of flapping.
//
// Verdicts: improved / within-noise / regressed, plus missing-in-current
// (treated as a regression — a silently dropped workload must not pass)
// and only-in-current (informational).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mcauth::obs {

struct BenchEntry {
    std::string workload;
    std::string engine;  ///< "" for benches without an engine dimension
    std::size_t threads = 0;
    std::uint64_t trials = 0;
    double seconds = 0;                   ///< min over repeats
    std::vector<double> seconds_repeats;  ///< every repeat's time (may be empty)
    double trials_per_sec = 0;  ///< the gated value (named by BenchFile::metric)

    /// Row identity inside a file: "workload[/engine]@Nt".
    std::string key() const;
    /// (max-min)/min over seconds_repeats; 0 with fewer than two repeats.
    double repeat_spread() const noexcept;
};

struct BenchFile {
    int schema_version = 0;
    std::string bench;
    std::uint64_t seed = 0;
    /// Name of the gated per-entry value, read from the file's top-level
    /// "metric" field; "trials_per_sec" when absent. Higher is better
    /// either way — quality benches (e.g. BENCH_adaptive.json) gate on
    /// "q_min" through the same noise-aware machinery. Files with
    /// different metrics are incomparable.
    std::string metric;
    // Manifest fields consulted for comparability / warnings.
    std::string git_revision;
    std::string compiler;
    std::string compiler_flags;
    std::string build_type;
    std::string sanitizer;
    std::string cpu_model;
    bool cpu_avx2 = false;
    bool bitslice_avx2_dispatch = false;
    std::size_t hardware_threads = 0;
    std::size_t threads = 0;
    std::vector<BenchEntry> entries;
    /// Expectation-suite verdicts from the manifest's "conformance" array
    /// (absent in pre-conformance files — an empty vector).
    struct ConformanceSummary {
        std::string suite;
        std::string scenario;
        std::uint64_t rules = 0;
        std::uint64_t events = 0;
        std::uint64_t violations = 0;
        bool partial = false;
    };
    std::vector<ConformanceSummary> conformance;
};

/// Parse a BENCH_*.json with embedded manifest from `text`. Returns false
/// with a one-line diagnostic in `error`; a syntactically valid file
/// without a manifest gets the explicit pre-manifest message.
bool load_bench_file(const std::string& text, BenchFile& out, std::string& error);
/// Same, reading from `path` (adds the path to diagnostics).
bool load_bench_file_path(const std::string& path, BenchFile& out,
                          std::string& error);

enum class Verdict {
    kImproved,
    kWithinNoise,
    kRegressed,
    kMissingInCurrent,
    kOnlyInCurrent,
};

const char* verdict_name(Verdict v) noexcept;

struct Comparison {
    std::string key;
    double base_rate = 0;   ///< baseline trials/sec
    double cur_rate = 0;    ///< current trials/sec
    double ratio = 0;       ///< cur/base; 0 when either side missing
    double noise = 0;       ///< repeat-spread component of the tolerance
    double threshold = 0;   ///< rel_tol + noise, the band actually applied
    Verdict verdict = Verdict::kWithinNoise;
};

struct CompareOptions {
    /// Floor on the relative tolerance band, before the repeat-spread
    /// widening. 0.05 = a 5% rate drop on a noiseless pair is a regression.
    double rel_tol = 0.05;
    /// Treat hardware/toolchain mismatches (normally warnings) as
    /// incompatible: for gating on a dedicated, stable box.
    bool strict_host = false;
};

struct CompareReport {
    bool incompatible = false;
    std::string incompatible_reason;
    std::vector<std::string> warnings;
    std::vector<Comparison> rows;
    /// One line per expectation suite in the CURRENT file that reported
    /// violations. Correctness, not timing: tools/bench_compare exits
    /// nonzero on these even under --report-only.
    std::vector<std::string> conformance_failures;

    bool has_regression() const noexcept;
    bool has_conformance_failure() const noexcept {
        return !conformance_failures.empty();
    }
    /// Markdown: manifest warnings, then a per-entry verdict table.
    std::string render_markdown(const BenchFile& base, const BenchFile& cur) const;
};

CompareReport compare_bench_files(const BenchFile& base, const BenchFile& cur,
                                  const CompareOptions& opts = {});

}  // namespace mcauth::obs

#include "obs/events.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <istream>

#include "obs/clock.hpp"
#include "util/json.hpp"

namespace mcauth::obs {

namespace {

std::atomic<EventSink*> g_sink{nullptr};

}  // namespace

const char* event_name(EventId id) noexcept {
    switch (id) {
        case EventId::kNone: return "None";
        case EventId::kPacketEmitted: return "PacketEmitted";
        case EventId::kPacketReceived: return "PacketReceived";
        case EventId::kPacketVerified: return "PacketVerified";
        case EventId::kPacketRejected: return "PacketRejected";
        case EventId::kPacketUnverifiable: return "PacketUnverifiable";
        case EventId::kSignatureLost: return "SignatureLost";
        case EventId::kQHatUpdated: return "QHatUpdated";
        case EventId::kFeedbackReceived: return "FeedbackReceived";
        case EventId::kRedesignTriggered: return "RedesignTriggered";
        case EventId::kRegimeShift: return "RegimeShift";
        case EventId::kPopulationBlock: return "PopulationBlock";
        case EventId::kBlameAttributed: return "BlameAttributed";
        case EventId::kDesignServed: return "DesignServed";
    }
    return "Unknown";
}

const char* redesign_reason_name(RedesignReason reason) noexcept {
    switch (reason) {
        case RedesignReason::kInitial: return "initial";
        case RedesignReason::kLossDrift: return "loss-drift";
        case RedesignReason::kBurstRegime: return "burst-regime";
    }
    return "unknown";
}

void emit_event(EventId id, std::uint32_t block, std::uint32_t index,
                std::uint32_t actor, double value) noexcept {
    const std::uint64_t ts_ns = clock().now_ns();
    TraceRecorder::global().record_structured(
        event_name(id), static_cast<std::uint16_t>(id), block, index, actor,
        value, ts_ns);
    if (EventSink* sink = g_sink.load(std::memory_order_acquire)) {
        Event ev;
        ev.id = id;
        ev.block = block;
        ev.index = index;
        ev.actor = actor;
        ev.value = value;
        ev.ts_ns = ts_ns;
        sink->on_event(ev);
    }
}

EventSink* set_event_sink(EventSink* sink) noexcept {
    return g_sink.exchange(sink, std::memory_order_acq_rel);
}

EventSink* event_sink() noexcept {
    return g_sink.load(std::memory_order_acquire);
}

bool decode_event(const TraceEvent& slot, Event& out) noexcept {
    if (slot.id == 0) return false;
    out.id = static_cast<EventId>(slot.id);
    out.block = slot.block;
    out.index = slot.index;
    out.actor = slot.actor;
    out.value = slot.value;
    out.ts_ns = slot.ts_ns;
    return true;
}

std::vector<Event> extract_events(const std::vector<TraceEvent>& snapshot) {
    std::vector<Event> out;
    out.reserve(snapshot.size());
    Event ev;
    for (const TraceEvent& slot : snapshot)
        if (decode_event(slot, ev)) out.push_back(ev);
    return out;
}

std::string events_to_jsonl(const std::vector<Event>& events,
                            std::uint64_t dropped_events) {
    std::string out = "{\"meta\": {\"schema\": \"mcauth-events-v1\", "
                      "\"dropped_events\": " +
                      std::to_string(dropped_events) + "}}\n";
    char buf[256];
    for (const Event& ev : events) {
        std::snprintf(buf, sizeof buf,
                      "{\"id\": %u, \"name\": \"%s\", \"block\": %u, "
                      "\"index\": %u, \"actor\": %u, \"value\": %.17g, "
                      "\"ts_ns\": %llu}\n",
                      static_cast<unsigned>(ev.id), event_name(ev.id), ev.block,
                      ev.index, ev.actor, ev.value,
                      static_cast<unsigned long long>(ev.ts_ns));
        out += buf;
    }
    return out;
}

bool write_events_jsonl(const std::string& path) {
    const TraceRecorder& rec = TraceRecorder::global();
    const std::vector<Event> events = extract_events(rec.snapshot());
    std::ofstream out(path);
    if (!out) return false;
    out << events_to_jsonl(events, rec.dropped());
    return static_cast<bool>(out);
}

bool parse_events_jsonl(std::istream& in, std::vector<Event>& out, JsonlStats& stats,
                        std::string& error) {
    out.clear();
    stats = {};
    std::string line;
    std::size_t lineno = 0;
    bool saw_meta = false;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        std::string parse_error;
        const auto doc = JsonValue::parse(line, &parse_error);
        if (!doc || !doc->is_object()) {
            // A killed run leaves a truncated trailer; skip-with-count so
            // the intact prefix stays usable (DESIGN.md §14).
            ++stats.skipped_lines;
            continue;
        }
        if (const JsonValue* meta = doc->find("meta")) {
            if (saw_meta) {
                error = "line " + std::to_string(lineno) + ": duplicate meta line";
                return false;
            }
            saw_meta = true;
            stats.dropped_events = meta->get_uint("dropped_events", 0);
            continue;
        }
        if (!doc->has("id")) {
            ++stats.skipped_lines;
            continue;
        }
        Event ev;
        ev.id = static_cast<EventId>(doc->get_uint("id", 0));
        ev.block = static_cast<std::uint32_t>(doc->get_uint("block", 0));
        ev.index = static_cast<std::uint32_t>(doc->get_uint("index", 0));
        ev.actor = static_cast<std::uint32_t>(doc->get_uint("actor", 0));
        ev.value = doc->get_double("value", 0.0);
        ev.ts_ns = doc->get_uint("ts_ns", 0);
        out.push_back(ev);
    }
    if (!saw_meta) {
        error = "missing meta header line";
        return false;
    }
    return true;
}

bool parse_events_jsonl(std::istream& in, std::vector<Event>& out,
                        std::uint64_t& dropped_events, std::string& error) {
    JsonlStats stats;
    const bool ok = parse_events_jsonl(in, out, stats, error);
    dropped_events = stats.dropped_events;
    return ok;
}

}  // namespace mcauth::obs

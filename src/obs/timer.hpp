// RAII span timer feeding a latency histogram and (optionally) the global
// trace recorder.
//
// Prefer the MCAUTH_OBS_SPAN(key) macro from obs/obs.hpp at instrumentation
// sites: it caches the histogram lookup per call site and compiles away
// entirely when MCAUTH_OBS_ENABLED is 0. Construct ScopedTimer directly only
// when the histogram is already at hand (tests, dynamic metric names).
#pragma once

#include <cstdint>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcauth::obs {

class ScopedTimer {
public:
    /// `name` must outlive the global trace recorder (string literal).
    /// `hist` may be null (trace-only span).
    ScopedTimer(LatencyHistogram* hist, const char* name) noexcept : name_(name) {
        if (!enabled()) return;
        hist_ = hist;
        active_ = true;
        tracing_ = trace_enabled();
        start_ns_ = clock().now_ns();
        if (tracing_) TraceRecorder::global().record_at(name_, 'B', start_ns_);
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    ~ScopedTimer() { stop(); }

    /// End the span early; subsequent stop()s are no-ops.
    void stop() noexcept {
        if (!active_) return;
        active_ = false;
        const std::uint64_t end_ns = clock().now_ns();
        if (tracing_) TraceRecorder::global().record_at(name_, 'E', end_ns);
        // A swapped FakeClock may move backwards between begin and end.
        if (hist_ != nullptr)
            hist_->record_ns(end_ns >= start_ns_ ? end_ns - start_ns_ : 0);
    }

private:
    LatencyHistogram* hist_ = nullptr;
    const char* name_;
    std::uint64_t start_ns_ = 0;
    bool active_ = false;
    bool tracing_ = false;
};

}  // namespace mcauth::obs

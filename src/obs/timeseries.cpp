#include "obs/timeseries.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <tuple>

namespace mcauth::obs {

namespace {

std::tuple<std::uint32_t, std::string_view, std::uint8_t> key_of(
    const TimeSeries::Sample& s) {
    return {s.block, std::string_view(s.series), static_cast<std::uint8_t>(s.kind)};
}

bool accumulates(TimeSeries::Kind kind) noexcept {
    return kind == TimeSeries::Kind::kCounter ||
           kind == TimeSeries::Kind::kHistogramCount ||
           kind == TimeSeries::Kind::kHistogramSumNs;
}

}  // namespace

const char* TimeSeries::kind_name(Kind kind) noexcept {
    switch (kind) {
        case Kind::kCounter: return "counter";
        case Kind::kGauge: return "gauge";
        case Kind::kHistogramCount: return "histogram_count";
        case Kind::kHistogramSumNs: return "histogram_sum_ns";
        case Kind::kValue: return "value";
    }
    return "unknown";
}

void TimeSeries::upsert(std::uint32_t block, std::string_view series, Kind kind,
                        double value, bool add) {
    const std::tuple<std::uint32_t, std::string_view, std::uint8_t> key{
        block, series, static_cast<std::uint8_t>(kind)};
    auto it = std::lower_bound(
        samples_.begin(), samples_.end(), key,
        [](const Sample& s, const auto& k) { return key_of(s) < k; });
    if (it != samples_.end() && key_of(*it) == key) {
        if (add)
            it->value += value;
        else
            it->value = value;
        return;
    }
    Sample s;
    s.block = block;
    s.series.assign(series);
    s.kind = kind;
    s.value = value;
    samples_.insert(it, std::move(s));
}

void TimeSeries::capture(std::uint32_t block) { capture(block, registry().snapshot()); }

void TimeSeries::capture(std::uint32_t block, const MetricsSnapshot& snap) {
    const MetricsSnapshot d = have_last_ ? delta(snap, last_) : snap;
    for (const auto& [name, value] : d.counters)
        if (value != 0)
            upsert(block, name, Kind::kCounter, static_cast<double>(value), true);
    for (const auto& [name, value] : d.gauges)
        upsert(block, name, Kind::kGauge, value, false);
    for (const auto& [name, totals] : d.histograms) {
        if (totals.count == 0) continue;
        upsert(block, name, Kind::kHistogramCount, static_cast<double>(totals.count),
               true);
        upsert(block, name, Kind::kHistogramSumNs, static_cast<double>(totals.sum_ns),
               true);
    }
    last_ = snap;
    have_last_ = true;
}

void TimeSeries::record(std::string_view series, std::uint32_t block, double value) {
    upsert(block, series, Kind::kValue, value, false);
}

void TimeSeries::merge(const TimeSeries& other) {
    for (const Sample& s : other.samples_)
        upsert(s.block, s.series, s.kind, s.value, accumulates(s.kind));
}

bool TimeSeries::identical(const TimeSeries& other) const {
    if (samples_.size() != other.samples_.size()) return false;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const Sample& a = samples_[i];
        const Sample& b = other.samples_[i];
        if (a.block != b.block || a.series != b.series || a.kind != b.kind ||
            a.value != b.value)
            return false;
    }
    return true;
}

std::string TimeSeries::to_jsonl() const {
    std::string out = "{\"meta\": {\"schema\": \"mcauth-timeseries-v1\", "
                      "\"samples\": " +
                      std::to_string(samples_.size()) + "}}\n";
    char buf[128];
    for (const Sample& s : samples_) {
        std::snprintf(buf, sizeof buf, "\", \"kind\": \"%s\", \"value\": %.17g}\n",
                      kind_name(s.kind), s.value);
        out += "{\"block\": " + std::to_string(s.block) + ", \"series\": \"" +
               json_escape(s.series) + buf;
    }
    return out;
}

std::string TimeSeries::to_csv() const {
    std::string out = "block,series,kind,value\n";
    char buf[64];
    for (const Sample& s : samples_) {
        std::snprintf(buf, sizeof buf, ",%s,%.17g\n", kind_name(s.kind), s.value);
        out += std::to_string(s.block) + "," + s.series + buf;
    }
    return out;
}

bool TimeSeries::write_jsonl(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_jsonl();
    return static_cast<bool>(out);
}

bool TimeSeries::write_csv(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_csv();
    return static_cast<bool>(out);
}

}  // namespace mcauth::obs

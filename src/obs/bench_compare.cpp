#include "obs/bench_compare.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/json.hpp"

namespace mcauth::obs {

namespace {

std::string fmt(double v, int digits = 1) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f", digits, v);
    return buf;
}

std::string fmt_pct(double frac, int digits = 1) {
    return fmt(frac * 100.0, digits) + "%";
}

}  // namespace

std::string BenchEntry::key() const {
    std::string k = workload;
    if (!engine.empty()) k += "/" + engine;
    k += "@" + std::to_string(threads) + "t";
    return k;
}

double BenchEntry::repeat_spread() const noexcept {
    if (seconds_repeats.size() < 2) return 0.0;
    const auto [lo, hi] =
        std::minmax_element(seconds_repeats.begin(), seconds_repeats.end());
    if (*lo <= 0.0) return 0.0;
    return (*hi - *lo) / *lo;
}

bool load_bench_file(const std::string& text, BenchFile& out, std::string& error) {
    std::string parse_error;
    const auto doc = JsonValue::parse(text, &parse_error);
    if (!doc.has_value()) {
        error = "not valid JSON: " + parse_error;
        return false;
    }
    if (!doc->is_object()) {
        error = "top level is not a JSON object";
        return false;
    }
    const JsonValue* manifest = doc->find("manifest");
    if (manifest == nullptr || !manifest->is_object()) {
        error =
            "pre-manifest result file (no \"manifest\" object) — regenerate it "
            "with the current bench binaries before comparing";
        return false;
    }
    out = BenchFile{};
    out.schema_version = static_cast<int>(manifest->get_uint("schema_version", 0));
    // v3 only added the optional timeseries_out pointer, so v2 baselines
    // stay comparable against v3 runs without regeneration.
    if (out.schema_version != 2 && out.schema_version != 3) {
        error = "unsupported schema_version " + std::to_string(out.schema_version) +
                " (this tool understands versions 2 and 3)";
        return false;
    }
    out.bench = manifest->get_string("bench");
    out.seed = manifest->get_uint("seed");
    out.metric = doc->get_string("metric");
    if (out.metric.empty()) out.metric = "trials_per_sec";
    out.git_revision = manifest->get_string("git_revision");
    out.compiler = manifest->get_string("compiler");
    out.compiler_flags = manifest->get_string("compiler_flags");
    out.build_type = manifest->get_string("build_type");
    out.sanitizer = manifest->get_string("sanitizer");
    out.cpu_model = manifest->get_string("cpu_model");
    out.cpu_avx2 = manifest->get_bool("cpu_avx2");
    out.bitslice_avx2_dispatch = manifest->get_bool("bitslice_avx2_dispatch");
    out.hardware_threads =
        static_cast<std::size_t>(manifest->get_uint("hardware_threads"));
    out.threads = static_cast<std::size_t>(manifest->get_uint("threads"));
    if (const JsonValue* conf = manifest->find("conformance");
        conf != nullptr && conf->is_array()) {
        for (const JsonValue& row : conf->array()) {
            if (!row.is_object()) {
                error = "non-object entry in manifest \"conformance\"";
                return false;
            }
            BenchFile::ConformanceSummary c;
            c.suite = row.get_string("suite");
            c.scenario = row.get_string("scenario");
            c.rules = row.get_uint("rules");
            c.events = row.get_uint("events");
            c.violations = row.get_uint("violations");
            c.partial = row.get_bool("partial");
            out.conformance.push_back(std::move(c));
        }
    }

    const JsonValue* results = doc->find("results");
    if (results == nullptr || !results->is_array()) {
        error = "missing \"results\" array";
        return false;
    }
    for (const JsonValue& row : results->array()) {
        if (!row.is_object()) {
            error = "non-object entry in \"results\"";
            return false;
        }
        BenchEntry e;
        e.workload = row.get_string("workload");
        e.engine = row.get_string("engine");
        e.threads = static_cast<std::size_t>(row.get_uint("threads"));
        e.trials = row.get_uint("trials");
        e.seconds = row.get_double("seconds");
        e.trials_per_sec = row.get_double(out.metric);
        if (const JsonValue* reps = row.find("seconds_repeats");
            reps != nullptr && reps->is_array())
            for (const JsonValue& r : reps->array())
                e.seconds_repeats.push_back(r.as_double());
        if (e.workload.empty()) {
            error = "results entry without a \"workload\"";
            return false;
        }
        out.entries.push_back(std::move(e));
    }
    return true;
}

bool load_bench_file_path(const std::string& path, BenchFile& out,
                          std::string& error) {
    std::ifstream in(path);
    if (!in) {
        error = path + ": cannot open";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!load_bench_file(buf.str(), out, error)) {
        error = path + ": " + error;
        return false;
    }
    return true;
}

const char* verdict_name(Verdict v) noexcept {
    switch (v) {
        case Verdict::kImproved: return "improved";
        case Verdict::kWithinNoise: return "within noise";
        case Verdict::kRegressed: return "REGRESSED";
        case Verdict::kMissingInCurrent: return "MISSING in current";
        case Verdict::kOnlyInCurrent: return "new entry";
    }
    return "?";
}

bool CompareReport::has_regression() const noexcept {
    for (const Comparison& c : rows)
        if (c.verdict == Verdict::kRegressed ||
            c.verdict == Verdict::kMissingInCurrent)
            return true;
    return false;
}

CompareReport compare_bench_files(const BenchFile& base, const BenchFile& cur,
                                  const CompareOptions& opts) {
    CompareReport report;

    // Hard incompatibilities: the numbers answer different questions.
    if (base.bench != cur.bench) {
        report.incompatible = true;
        report.incompatible_reason =
            "different benches: \"" + base.bench + "\" vs \"" + cur.bench + "\"";
        return report;
    }
    if (base.seed != cur.seed) {
        report.incompatible = true;
        report.incompatible_reason = "different seeds: " + std::to_string(base.seed) +
                                     " vs " + std::to_string(cur.seed);
        return report;
    }
    if (base.metric != cur.metric) {
        report.incompatible = true;
        report.incompatible_reason = "different gated metrics: \"" + base.metric +
                                     "\" vs \"" + cur.metric + "\"";
        return report;
    }

    // Soft mismatches: comparable, but the reader must see them.
    const auto warn_if = [&](bool differ, const std::string& what,
                             const std::string& a, const std::string& b) {
        if (!differ) return;
        report.warnings.push_back(what + " differs: \"" + a + "\" vs \"" + b + "\"");
    };
    warn_if(base.cpu_model != cur.cpu_model, "cpu_model", base.cpu_model,
            cur.cpu_model);
    warn_if(base.compiler != cur.compiler, "compiler", base.compiler, cur.compiler);
    warn_if(base.compiler_flags != cur.compiler_flags, "compiler_flags",
            base.compiler_flags, cur.compiler_flags);
    warn_if(base.build_type != cur.build_type, "build_type", base.build_type,
            cur.build_type);
    warn_if(base.sanitizer != cur.sanitizer, "sanitizer", base.sanitizer,
            cur.sanitizer);
    warn_if(base.hardware_threads != cur.hardware_threads, "hardware_threads",
            std::to_string(base.hardware_threads),
            std::to_string(cur.hardware_threads));
    warn_if(base.cpu_avx2 != cur.cpu_avx2, "cpu_avx2",
            base.cpu_avx2 ? "true" : "false", cur.cpu_avx2 ? "true" : "false");
    warn_if(base.bitslice_avx2_dispatch != cur.bitslice_avx2_dispatch,
            "bitslice_avx2_dispatch", base.bitslice_avx2_dispatch ? "true" : "false",
            cur.bitslice_avx2_dispatch ? "true" : "false");
    if (opts.strict_host && !report.warnings.empty()) {
        report.incompatible = true;
        report.incompatible_reason =
            "--strict-host: " + report.warnings.front() +
            (report.warnings.size() > 1
                 ? " (+" + std::to_string(report.warnings.size() - 1) + " more)"
                 : "");
        return report;
    }

    // Conformance gate: any suite violations in the CURRENT run fail the
    // comparison outright — behavioral invariants are not subject to the
    // timing-noise tolerance machinery.
    for (const BenchFile::ConformanceSummary& c : cur.conformance) {
        if (c.violations == 0) continue;
        std::string line = "suite " + c.suite;
        if (!c.scenario.empty()) line += " (" + c.scenario + ")";
        line += ": " + std::to_string(c.violations) + " violation(s) over " +
                std::to_string(c.events) + " events";
        report.conformance_failures.push_back(std::move(line));
    }

    const auto find_entry = [](const BenchFile& f,
                               const std::string& key) -> const BenchEntry* {
        for (const BenchEntry& e : f.entries)
            if (e.key() == key) return &e;
        return nullptr;
    };

    for (const BenchEntry& b : base.entries) {
        Comparison c;
        c.key = b.key();
        c.base_rate = b.trials_per_sec;
        const BenchEntry* n = find_entry(cur, c.key);
        if (n == nullptr) {
            c.verdict = Verdict::kMissingInCurrent;
            report.rows.push_back(std::move(c));
            continue;
        }
        if (n->trials != b.trials) {
            report.incompatible = true;
            report.incompatible_reason = "entry " + c.key + " ran " +
                                         std::to_string(b.trials) + " vs " +
                                         std::to_string(n->trials) + " trials";
            return report;
        }
        c.cur_rate = n->trials_per_sec;
        c.noise = std::max(b.repeat_spread(), n->repeat_spread());
        c.threshold = opts.rel_tol + c.noise;
        c.ratio = c.base_rate > 0 ? c.cur_rate / c.base_rate : 0.0;
        if (c.ratio < 1.0 - c.threshold)
            c.verdict = Verdict::kRegressed;
        else if (c.ratio > 1.0 + c.threshold)
            c.verdict = Verdict::kImproved;
        else
            c.verdict = Verdict::kWithinNoise;
        report.rows.push_back(std::move(c));
    }
    for (const BenchEntry& n : cur.entries) {
        if (find_entry(base, n.key()) != nullptr) continue;
        Comparison c;
        c.key = n.key();
        c.cur_rate = n.trials_per_sec;
        c.verdict = Verdict::kOnlyInCurrent;
        report.rows.push_back(std::move(c));
    }
    return report;
}

std::string CompareReport::render_markdown(const BenchFile& base,
                                           const BenchFile& cur) const {
    std::string out;
    out += "## bench_compare: " + base.bench + "\n\n";
    out += "baseline `" + base.git_revision + "` vs current `" + cur.git_revision +
           "`\n\n";
    if (incompatible) {
        out += "**INCOMPATIBLE**: " + incompatible_reason + "\n";
        return out;
    }
    for (const std::string& w : warnings) out += "- warning: " + w + "\n";
    if (!warnings.empty()) out += "\n";
    for (const std::string& f : conformance_failures)
        out += "- **CONFORMANCE FAILURE**: " + f + "\n";
    if (!conformance_failures.empty()) out += "\n";
    if (conformance_failures.empty() && !cur.conformance.empty()) {
        out += "conformance: ";
        bool first = true;
        for (const auto& c : cur.conformance) {
            if (!first) out += ", ";
            first = false;
            out += c.suite;
            if (!c.scenario.empty()) out += "(" + c.scenario + ")";
            out += " PASS";
        }
        out += "\n\n";
    }
    const std::string metric =
        base.metric.empty() || base.metric == "trials_per_sec" ? "trials/s"
                                                               : base.metric;
    out += "| entry | baseline " + metric + " | current " + metric +
           " | delta | tolerance | verdict |\n";
    out += "|---|---:|---:|---:|---:|---|\n";
    // Throughput-scale values read best as integers; fractional metrics
    // (q_min and friends) need the decimals.
    const auto fmt_metric = [](double v) { return fmt(v, v < 1000.0 ? 4 : 0); };
    for (const Comparison& c : rows) {
        const bool both = c.verdict != Verdict::kMissingInCurrent &&
                          c.verdict != Verdict::kOnlyInCurrent;
        out += "| " + c.key + " | ";
        out += (c.verdict == Verdict::kOnlyInCurrent ? "-" : fmt_metric(c.base_rate)) +
               " | ";
        out += (c.verdict == Verdict::kMissingInCurrent ? "-" : fmt_metric(c.cur_rate)) +
               " | ";
        out += (both ? fmt_pct(c.ratio - 1.0) : std::string("-")) + " | ";
        out += (both ? "±" + fmt_pct(c.threshold) : std::string("-")) + " | ";
        out += std::string(verdict_name(c.verdict)) + " |\n";
    }
    return out;
}

}  // namespace mcauth::obs

#include "obs/progress.hpp"

#include <cstdio>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace mcauth::obs {

namespace {

std::atomic<bool> progress_flag{false};

/// "6.1M" style compaction so the line stays one terminal row wide.
std::string human_rate(double per_sec) {
    char buf[32];
    if (per_sec >= 1e9)
        std::snprintf(buf, sizeof buf, "%.1fG", per_sec / 1e9);
    else if (per_sec >= 1e6)
        std::snprintf(buf, sizeof buf, "%.1fM", per_sec / 1e6);
    else if (per_sec >= 1e3)
        std::snprintf(buf, sizeof buf, "%.1fk", per_sec / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.0f", per_sec);
    return buf;
}

}  // namespace

bool progress_enabled() noexcept {
    return progress_flag.load(std::memory_order_relaxed);
}

void set_progress_enabled(bool on) noexcept {
    progress_flag.store(on, std::memory_order_relaxed);
}

ProgressReporter::ProgressReporter(const char* label, std::uint64_t total_units,
                                   const char* unit,
                                   std::uint64_t min_interval_ns) noexcept
    : label_(label), unit_(unit), total_(total_units),
      min_interval_ns_(min_interval_ns) {
    if (!progress_enabled()) return;
    active_ = true;
    start_ns_ = clock().now_ns();
    last_print_ns_.store(start_ns_, std::memory_order_relaxed);
}

ProgressReporter::~ProgressReporter() {
    if (!active_ || emitted_.load(std::memory_order_relaxed) == 0) return;
    // Close the in-place line with a final complete one.
    std::fprintf(stderr, "\r%s\n", format_line().c_str());
}

void ProgressReporter::tick(std::uint64_t units) noexcept {
    if (!active_) return;
    done_.fetch_add(units, std::memory_order_relaxed);
    const std::uint64_t now = clock().now_ns();
    std::uint64_t last = last_print_ns_.load(std::memory_order_relaxed);
    if (now < last + min_interval_ns_) return;
    // One shard wins the right to print this interval; losers just return.
    if (!last_print_ns_.compare_exchange_strong(last, now,
                                                std::memory_order_relaxed))
        return;
    emit(now);
}

void ProgressReporter::emit(std::uint64_t now_ns) noexcept {
    emitted_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "\r%s", format_line().c_str());
    std::fflush(stderr);
    if (!enabled()) return;
    static Gauge& g_done = registry().gauge("exec.progress.done");
    static Gauge& g_total = registry().gauge("exec.progress.total");
    static Gauge& g_rate = registry().gauge("exec.progress.rate");
    static Gauge& g_eta = registry().gauge("exec.progress.eta_s");
    const std::uint64_t done = done_.load(std::memory_order_relaxed);
    const double elapsed_s =
        now_ns >= start_ns_ ? static_cast<double>(now_ns - start_ns_) / 1e9 : 0.0;
    const double rate = elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0.0;
    g_done.set(static_cast<double>(done));
    g_total.set(static_cast<double>(total_));
    g_rate.set(rate);
    g_eta.set(rate > 0 && total_ > done
                  ? static_cast<double>(total_ - done) / rate
                  : 0.0);
}

std::string ProgressReporter::format_line() const {
    const std::uint64_t done = done_.load(std::memory_order_relaxed);
    const std::uint64_t now = clock().now_ns();
    const double elapsed_s =
        now >= start_ns_ ? static_cast<double>(now - start_ns_) / 1e9 : 0.0;
    const double rate = elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0.0;
    const double pct =
        total_ > 0 ? 100.0 * static_cast<double>(done) / static_cast<double>(total_)
                   : 0.0;
    const double eta_s =
        rate > 0 && total_ > done
            ? static_cast<double>(total_ - done) / rate
            : 0.0;
    char buf[160];
    std::snprintf(buf, sizeof buf, "[%s] %llu/%llu %s (%.1f%%)  %s/s  eta %.1fs",
                  label_, static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total_), unit_, pct,
                  human_rate(rate).c_str(), eta_s);
    return buf;
}

}  // namespace mcauth::obs

// Block-granular time series over the metrics registry.
//
// Counters and histograms (obs/metrics.hpp) are process-lifetime
// accumulators; a postmortem wants the TIMELINE — how much happened in
// block 17, not in total. TimeSeries turns snapshot deltas into per-block
// samples: call capture(block) once per block boundary and every counter's
// increment since the previous capture, every histogram's count/sum delta,
// and every gauge's current level lands as one (block, series, kind,
// value) sample. record() adds manual series (q_min, loss estimates, ...)
// the registry does not carry.
//
// Like the population sketches, series are mergeable across exec shards:
// merge() folds another instance in by (block, series, kind) key —
// accumulator kinds add, level kinds take the merged-in side — and
// identical() is the bit-exact determinism gate. Samples are kept sorted
// by (block, series, kind), so export order never depends on capture or
// merge interleaving.
//
// Export formats:
//   JSONL  meta line {"meta": {"schema": "mcauth-timeseries-v1", ...}},
//          then {"block": B, "series": "s", "kind": "counter", "value": V}
//          per line — the join input of tools/mcauth_report;
//   CSV    block,series,kind,value — for spreadsheets/plotting.
//
// Values are stored as doubles; integer kinds stay exact up to 2^53,
// far beyond any per-block delta this codebase produces.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace mcauth::obs {

class TimeSeries {
public:
    enum class Kind : std::uint8_t {
        kCounter = 0,         // per-block counter increment (adds on merge)
        kGauge = 1,           // level at capture time (merged-in side wins)
        kHistogramCount = 2,  // per-block sample count (adds on merge)
        kHistogramSumNs = 3,  // per-block latency sum (adds on merge)
        kValue = 4,           // manual record() point (merged-in side wins)
    };
    static const char* kind_name(Kind kind) noexcept;

    struct Sample {
        std::uint32_t block = 0;
        std::string series;
        Kind kind = Kind::kValue;
        double value = 0.0;
    };

    /// Snapshot the global registry and record the delta vs the previous
    /// capture under `block`. The first capture records absolute values
    /// (delta from an empty registry). Zero counter/histogram deltas are
    /// skipped; gauge levels always land.
    void capture(std::uint32_t block);
    /// Same, against a caller-provided snapshot (tests, private registries).
    void capture(std::uint32_t block, const MetricsSnapshot& snap);

    /// Record a manual sample (Kind::kValue). Re-recording the same
    /// (block, series) overwrites.
    void record(std::string_view series, std::uint32_t block, double value);

    /// Sorted by (block, series, kind).
    const std::vector<Sample>& samples() const noexcept { return samples_; }
    bool empty() const noexcept { return samples_.empty(); }

    /// Fold `other` in by key: accumulator kinds (counter, histogram_*)
    /// add; level kinds (gauge, value) take `other`'s sample. Integer adds
    /// in a canonical key order — shard grouping never changes a bit.
    void merge(const TimeSeries& other);
    /// Bit-exact sample equality — the determinism gate.
    bool identical(const TimeSeries& other) const;

    std::string to_jsonl() const;
    std::string to_csv() const;
    /// False on I/O failure.
    bool write_jsonl(const std::string& path) const;
    bool write_csv(const std::string& path) const;

private:
    void upsert(std::uint32_t block, std::string_view series, Kind kind, double value,
                bool add);

    std::vector<Sample> samples_;
    MetricsSnapshot last_;
    bool have_last_ = false;
};

}  // namespace mcauth::obs

// Declarative trace expectations — invariants over the structured event
// stream (obs/events.hpp), checked online while a run executes and offline
// over exported JSONL (tools/trace_check).
//
// A suite is a named bundle of rules built with a small chaining DSL:
//
//   ExpectationSuite suite("hash-chain");
//   suite.expect("qhat-in-unit-interval", EventId::kQHatUpdated,
//                [](const Event& e) { return e.value >= 0.0 && e.value <= 1.0; },
//                "receiver loss estimate stays a probability")
//        .require_before("verified-needs-signature", EventId::kPacketVerified,
//                        EventId::kPacketReceived, Scope::kActorBlock,
//                        /*anchor_signature_only=*/true)
//        .forbid_after("no-verify-after-sig-loss", EventId::kSignatureLost,
//                      EventId::kPacketVerified, Scope::kActorBlock)
//        .within_blocks("redesign-follows-regime", EventId::kRegimeShift,
//                       EventId::kRedesignTriggered, 16);
//
// Four rule classes cover the Chan–Perrig–Song guarantees end to end:
//
//   predicate   — a per-event check on {block, index, actor, value}
//   precedence  — subject event requires a matching anchor event earlier in
//                 the stream (same scope key); the signature-only variant
//                 is "no PacketVerified unless a signature packet for that
//                 (receiver, block) was received first" — the trace-level
//                 shadow of the signature-rooted-path theorem
//   forbid-after — once the anchor occurs in a scope, the subject must not
//                 (a verify after SignatureLost would be a forged path)
//   bounded-lag — a response event must occur within k blocks of each
//                 trigger (the adaptive loop's reaction-time contract)
//
// Evaluation is streaming with bounded state: scope keys are pruned once
// the block watermark moves kBlockWindow past them, so a checker holds a
// sliding window of recent blocks no matter how long the run is. The same
// ConformanceChecker runs online (installed as the EventSink for the
// duration of a run via OnlineConformance) and offline (trace_check feeds
// it parsed JSONL) — verdict identity between the two is a tested property.
//
// Partial traces: when the trace ring wrapped (dropped_events > 0 in the
// JSONL meta line), the earliest retained blocks may be missing their
// anchors. With skip_partial set, precedence and forbid-after checks are
// suppressed for each actor's first observed block — everything after the
// first retained event is contiguous history and is checked in full.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/events.hpp"

namespace mcauth::obs {

/// Which event fields form the matching key between anchor and subject.
/// Packing limits (keys are packed into 64 bits): kActorBlockIndex requires
/// actor < 2^16, block < 2^24, index < 2^24 — far beyond any committed
/// scenario; the others are exact.
enum class Scope : std::uint8_t {
    kBlock,            // {block}
    kActorBlock,       // {actor, block}
    kBlockIndex,       // {block, index}
    kActorBlockIndex,  // {actor, block, index}
};

struct Rule {
    enum class Kind : std::uint8_t {
        kPredicate,
        kPrecedence,
        kForbidAfter,
        kBoundedLag,
    };

    Kind kind = Kind::kPredicate;
    std::string name;
    std::string description;
    EventId subject = EventId::kNone;  // the event this rule judges
    EventId anchor = EventId::kNone;   // prior/trigger event (non-predicate kinds)
    Scope scope = Scope::kActorBlock;
    bool anchor_signature_only = false;  // anchor must carry value == 1
    std::uint32_t max_lag_blocks = 0;    // kBoundedLag only
    std::function<bool(const Event&)> predicate;  // kPredicate only
};

struct Violation {
    std::string rule;
    std::string message;
    Event event;  // the offending event (or the expired trigger for lag rules)
};

struct ConformanceReport {
    std::string suite;
    std::size_t rules = 0;
    std::uint64_t events_seen = 0;
    std::uint64_t total_violations = 0;
    bool partial = false;  // checked a wrapped (truncated) trace
    /// First kMaxDetailedViolations violations with context; the total above
    /// keeps counting past the cap.
    std::vector<Violation> violations;

    static constexpr std::size_t kMaxDetailedViolations = 16;

    bool ok() const noexcept { return total_violations == 0; }
    /// Human-readable verdict block (one line per violation) for CLI/bench
    /// output.
    std::string render_text() const;
};

class ExpectationSuite {
public:
    explicit ExpectationSuite(std::string name) : name_(std::move(name)) {}

    const std::string& name() const noexcept { return name_; }
    const std::vector<Rule>& rules() const noexcept { return rules_; }

    /// predicate: every `subject` event must satisfy `pred`.
    ExpectationSuite& expect(std::string rule_name, EventId subject,
                             std::function<bool(const Event&)> pred,
                             std::string description);
    /// precedence: a `subject` event requires a prior `anchor` event with the
    /// same scope key (optionally restricted to signature packets).
    ExpectationSuite& require_before(std::string rule_name, EventId subject,
                                     EventId anchor, Scope scope,
                                     bool anchor_signature_only = false);
    /// forbid-after: once `anchor` occurs in a scope, `subject` must not.
    ExpectationSuite& forbid_after(std::string rule_name, EventId anchor,
                                   EventId subject, Scope scope);
    /// bounded-lag: each `trigger` demands a `response` within `max_lag_blocks`
    /// blocks (inclusive; lag 0 = same block).
    ExpectationSuite& within_blocks(std::string rule_name, EventId trigger,
                                    EventId response,
                                    std::uint32_t max_lag_blocks);

    /// Append every rule of `other` (suite layering: adaptive-loop extends
    /// hash-chain extends stream-core).
    ExpectationSuite& include(const ExpectationSuite& other);

private:
    std::string name_;
    std::vector<Rule> rules_;
};

/// Streaming evaluator with bounded per-block state. Feed events in stream
/// order; call finish() once to flush pending bounded-lag windows and take
/// the report. Not thread-safe — OnlineConformance adds the lock.
class ConformanceChecker {
public:
    /// Scope keys older than this many blocks behind the watermark are
    /// pruned. Must exceed every suite's max_lag_blocks and any in-flight
    /// block span of the instrumented pipelines.
    static constexpr std::uint32_t kBlockWindow = 64;

    explicit ConformanceChecker(const ExpectationSuite& suite,
                                bool skip_partial = false);

    void on_event(const Event& ev);
    ConformanceReport finish();

private:
    struct PrecedenceState {
        // key -> block it was seen in (block kept for pruning)
        std::unordered_map<std::uint64_t, std::uint32_t> anchors;
    };
    struct LagState {
        std::vector<Event> pending;  // unanswered triggers
    };

    void add_violation(const Rule& rule, const Event& ev, std::string message);
    void prune(std::uint32_t watermark);
    bool in_partial_prefix(const Event& ev);

    const ExpectationSuite& suite_;
    bool skip_partial_;
    ConformanceReport report_;
    std::vector<PrecedenceState> precedence_;  // parallel to suite rules
    std::vector<LagState> lag_;                // parallel to suite rules
    std::unordered_map<std::uint32_t, std::uint32_t> first_block_;  // actor -> first block seen
    std::uint32_t max_block_ = 0;
    std::uint32_t pruned_below_ = 0;
    bool finished_ = false;
};

/// RAII online conformance: installs itself as the process EventSink on
/// construction, uninstalls on finish()/destruction. Events emitted from
/// any thread are serialized into the checker under a mutex (the committed
/// scenarios emit from one thread; the lock is for safety, not throughput).
class OnlineConformance {
public:
    explicit OnlineConformance(const ExpectationSuite& suite);
    ~OnlineConformance();

    OnlineConformance(const OnlineConformance&) = delete;
    OnlineConformance& operator=(const OnlineConformance&) = delete;

    /// Uninstall the sink and return the verdict. Idempotent.
    ConformanceReport finish();

private:
    struct Sink;
    std::unique_ptr<Sink> sink_;
    ConformanceReport report_;
    bool finished_ = false;
};

/// Built-in suite registry. Tiered:
///   stream-core   — packet-conservation + estimate-sanity rules every
///                   scheme satisfies
///   hash-chain    — adds the signature-precedence and no-verify-after-loss
///                   rules of the Chan03 construction
///   adaptive-loop — adds the feedback/redesign reaction-time contract
/// Returns nullptr for unknown names.
const ExpectationSuite* find_suite(std::string_view name);
std::vector<std::string> suite_names();

/// Run a full offline check over parsed events. `dropped_events` comes from
/// the JSONL meta line; nonzero enables skip_partial and marks the report
/// partial.
ConformanceReport check_events(const ExpectationSuite& suite,
                               const std::vector<Event>& events,
                               std::uint64_t dropped_events);

}  // namespace mcauth::obs

#include "obs/manifest.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/perfctr.hpp"
#include "util/rng.hpp"

// Build facts injected by src/obs/CMakeLists.txt at configure time. The git
// revision therefore reflects the last *configure*, not necessarily the
// last commit — CMake reconfigures on every CMakeLists change, which in
// practice tracks the PR granularity the manifests care about.
#ifndef MCAUTH_GIT_DESCRIBE
#define MCAUTH_GIT_DESCRIBE "unknown"
#endif
#ifndef MCAUTH_CXX_FLAGS
#define MCAUTH_CXX_FLAGS "unknown"
#endif
#ifndef MCAUTH_BUILD_TYPE
#define MCAUTH_BUILD_TYPE "unknown"
#endif
#ifndef MCAUTH_SANITIZE_NAME
#define MCAUTH_SANITIZE_NAME ""
#endif

namespace mcauth::obs {

namespace {

std::string compiler_id() {
#if defined(__clang__)
    return std::string("Clang ") + std::to_string(__clang_major__) + "." +
           std::to_string(__clang_minor__) + "." + std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
    return std::string("GNU ") + std::to_string(__GNUC__) + "." +
           std::to_string(__GNUC_MINOR__) + "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

std::string cpu_model_name() {
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        const auto colon = line.find(':');
        if (colon == std::string::npos) continue;
        if (line.compare(0, 10, "model name") != 0) continue;
        std::size_t start = colon + 1;
        while (start < line.size() && line[start] == ' ') ++start;
        return line.substr(start);
    }
    return "unknown";
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

std::string utc_timestamp() {
    const std::time_t now =
        std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

}  // namespace

RunManifest RunManifest::collect(std::string bench, std::uint64_t seed,
                                 std::size_t threads, std::size_t warmup,
                                 std::size_t repeat) {
    RunManifest m;
    m.bench = std::move(bench);
    m.git_revision = MCAUTH_GIT_DESCRIBE;
    m.compiler = compiler_id();
    m.compiler_flags = MCAUTH_CXX_FLAGS;
    m.build_type = MCAUTH_BUILD_TYPE;
    m.sanitizer = MCAUTH_SANITIZE_NAME;
#if MCAUTH_OBS_ENABLED
    m.obs_compiled_in = true;
#else
    m.obs_compiled_in = false;
#endif
    m.cpu_model = cpu_model_name();
    m.cpu_avx2 = cpu_has_avx2();
    m.bitslice_avx2_dispatch = Rng::bernoulli_bits64_uses_avx2();
    const unsigned hw = std::thread::hardware_concurrency();
    m.hardware_threads = hw == 0 ? 1 : hw;
    m.threads = threads;
    m.seed = seed;
    m.warmup = warmup;
    m.repeat = repeat;
    m.timestamp_utc = utc_timestamp();
    {
        const PerfCounterSet probe;
        m.perf_counters = probe.available() ? "available" : "unavailable";
    }
    for (const auto& [name, value] : registry().counter_values())
        m.metrics_counters.emplace_back(name, value);
    return m;
}

std::string RunManifest::to_json(int indent) const {
    const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent), ' ');
    const std::string field_pad = pad + "  ";
    std::string out = "{\n";
    const auto str = [&](const char* name, const std::string& v, bool comma = true) {
        out += field_pad + "\"" + name + "\": \"" + json_escape(v) + "\"";
        out += comma ? ",\n" : "\n";
    };
    const auto boolean = [&](const char* name, bool v) {
        out += field_pad + "\"" + name + "\": " + (v ? "true" : "false") + ",\n";
    };
    const auto uint = [&](const char* name, std::uint64_t v) {
        out += field_pad + "\"" + name + "\": " + std::to_string(v) + ",\n";
    };

    uint("schema_version", static_cast<std::uint64_t>(schema_version));
    str("bench", bench);
    str("git_revision", git_revision);
    str("compiler", compiler);
    str("compiler_flags", compiler_flags);
    str("build_type", build_type);
    str("sanitizer", sanitizer);
    boolean("obs_compiled_in", obs_compiled_in);
    str("cpu_model", cpu_model);
    boolean("cpu_avx2", cpu_avx2);
    boolean("bitslice_avx2_dispatch", bitslice_avx2_dispatch);
    uint("hardware_threads", hardware_threads);
    uint("threads", threads);
    uint("seed", seed);
    uint("warmup", warmup);
    uint("repeat", repeat);
    str("timestamp_utc", timestamp_utc);
    str("perf_counters", perf_counters);
    if (!timeseries_out.empty()) str("timeseries_out", timeseries_out);
    // Raw embed (frontier_json() emits a complete single-line object).
    if (!design_frontier.empty())
        out += field_pad + "\"design_frontier\": " + design_frontier + ",\n";
    out += field_pad + "\"metrics_counters\": {";
    bool first = true;
    for (const auto& [name, value] : metrics_counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += field_pad + "  \"" + json_escape(name) + "\": " + std::to_string(value);
    }
    out += first ? "}" : "\n" + field_pad + "}";
    if (!conformance.empty()) {
        out += ",\n" + field_pad + "\"conformance\": [";
        bool first_entry = true;
        for (const ConformanceEntry& entry : conformance) {
            out += first_entry ? "\n" : ",\n";
            first_entry = false;
            const std::string epad = field_pad + "  ";
            out += epad + "{\n";
            out += epad + "  \"suite\": \"" + json_escape(entry.suite) + "\",\n";
            out += epad + "  \"scenario\": \"" + json_escape(entry.scenario) +
                   "\",\n";
            out += epad + "  \"rules\": " + std::to_string(entry.rules) + ",\n";
            out += epad + "  \"events\": " + std::to_string(entry.events) + ",\n";
            out += epad +
                   "  \"violations\": " + std::to_string(entry.violations) +
                   ",\n";
            out += epad + "  \"partial\": " +
                   (entry.partial ? "true" : "false") + ",\n";
            out += epad + "  \"details\": [";
            bool first_detail = true;
            for (const std::string& detail : entry.details) {
                out += first_detail ? "\n" : ",\n";
                first_detail = false;
                out += epad + "    \"" + json_escape(detail) + "\"";
            }
            out += first_detail ? "]\n" : "\n" + epad + "  ]\n";
            out += epad + "}";
        }
        out += "\n" + field_pad + "]";
    }
    out += "\n" + pad + "}";
    return out;
}

}  // namespace mcauth::obs

// Process-wide metrics registry: named counters, gauges and fixed-bucket
// latency histograms.
//
// Design constraints (this layer sits under per-packet hot paths):
//   * increments are plain relaxed atomics — no locks, no allocation;
//   * registration (name -> object) takes a mutex, but call sites cache the
//     returned reference (see the MCAUTH_OBS_* macros in obs/obs.hpp), so
//     the map is consulted once per call site, not per event;
//   * object addresses are stable for the life of the process, so cached
//     references never dangle;
//   * everything is gated on a runtime flag (`enabled()`); the compile-time
//     switch MCAUTH_OBS_ENABLED removes the call sites entirely.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcauth::obs {

/// Runtime master switch for all instrumentation (default: on). Counters
/// and histograms stop mutating when off; exporters still work.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Separate opt-in for trace-event recording (default: off — the ring
/// buffer write per span begin/end is heavier than a counter bump).
bool trace_enabled() noexcept;
void set_trace_enabled(bool on) noexcept;

/// Monotone event count.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (buffer occupancy, remaining key capacity, ...).
class Gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    void add(double d) noexcept {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
        }
    }
    double value() const noexcept { return value_.load(std::memory_order_relaxed); }
    void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram over nanoseconds. Bucket i holds samples
/// whose bit width is i (i.e. [2^(i-1), 2^i - 1]; bucket 0 holds exactly 0),
/// so record_ns() is a bit_width + one relaxed increment — no search, no
/// floating point on the hot path.
class LatencyHistogram {
public:
    static constexpr std::size_t kBuckets = 64;

    void record_ns(std::uint64_t ns) noexcept;

    std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
    std::uint64_t sum_ns() const noexcept { return sum_.load(std::memory_order_relaxed); }
    /// 0 when empty.
    std::uint64_t min_ns() const noexcept;
    std::uint64_t max_ns() const noexcept { return max_.load(std::memory_order_relaxed); }
    double mean_ns() const noexcept;

    std::uint64_t bucket_count(std::size_t i) const;
    /// Inclusive upper edge of bucket i (2^i - 1; bucket 0 -> 0).
    static std::uint64_t bucket_upper_ns(std::size_t i);

    /// Smallest bucket upper edge covering at least fraction q of samples;
    /// 0 when empty. An upper bound on the true quantile (bucket-resolution).
    std::uint64_t quantile_ns(double q) const;

    void reset() noexcept;

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time copy of every metric's accumulable state, for per-region
/// (per-repeat, per-phase) reporting: snapshot before and after, then
/// delta(). All name lists are sorted.
struct MetricsSnapshot {
    struct HistogramTotals {
        std::uint64_t count = 0;
        std::uint64_t sum_ns = 0;
    };
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramTotals>> histograms;

    /// Counter value by name; `fallback` when absent.
    std::uint64_t counter_or(std::string_view name,
                             std::uint64_t fallback = 0) const noexcept;
};

/// `newer` minus `older`: counters and histogram totals subtract (an entry
/// missing from `older` counts from zero; a counter that went backwards —
/// reset() between the snapshots — clamps to 0 rather than wrapping).
/// Gauges are levels, not accumulators, so the newer level passes through.
MetricsSnapshot delta(const MetricsSnapshot& newer, const MetricsSnapshot& older);

/// Name -> metric map. One process-wide instance (`registry()`); separate
/// instances are constructible for tests.
class MetricsRegistry {
public:
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    LatencyHistogram& histogram(std::string_view name);

    /// Capture every metric's current value (one lock, no allocation on the
    /// hot path — callers are bench harnesses, not instrumentation sites).
    MetricsSnapshot snapshot() const;

    /// Zero every metric, keeping registrations (and cached references) valid.
    void reset();

    /// Sorted snapshots for exporters.
    std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
    std::vector<std::pair<std::string, double>> gauge_values() const;
    std::vector<std::pair<std::string, const LatencyHistogram*>> histogram_entries() const;

    /// {"counters":{...},"gauges":{...},"histograms":{...}} dump.
    std::string to_json() const;
    /// Human-readable report rendered with util/table.
    std::string render_table() const;
    /// Write to_json() to `path`; false on I/O failure.
    bool write_json(const std::string& path) const;

private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms_;
};

/// The process-wide registry every MCAUTH_OBS_* macro records into.
MetricsRegistry& registry() noexcept;

/// Escape `s` for embedding in a JSON string literal (shared by every
/// hand-rolled exporter in the obs layer).
std::string json_escape(std::string_view s);

}  // namespace mcauth::obs

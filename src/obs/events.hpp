// Structured trace events — the semantic layer above TraceRecorder.
//
// Where obs/trace.hpp records *strings* (named spans and instants for a
// flame graph), this header gives the hot paths a fixed vocabulary of typed
// events with stable numeric ids and a uniform payload:
//
//   id              event                  block   index     actor   value
//   --------------- ---------------------- ------- --------- ------- --------------
//   1  PacketEmitted      sender pushes a packet    block    seq/vertex  0     1=signature
//   2  PacketReceived     packet survives channel   block    seq/vertex  rcvr  1=signature
//   3  PacketVerified     hash path authenticated   block    seq/vertex  rcvr  0
//   4  PacketRejected     verification failed       block    seq/vertex  rcvr  0
//   5  PacketUnverifiable no surviving path         block    seq/vertex  rcvr  0
//   6  SignatureLost      block's sig never arrived block    0           rcvr  0
//   7  QHatUpdated        receiver loss estimate    block    0           rcvr  q_hat
//   8  FeedbackReceived   controller accepted report block   report_seq  rcvr  q_hat
//   9  RedesignTriggered  controller re-ran designer block   reason      0     new q target
//  10  RegimeShift        channel ground truth moved block   0           0     new loss rate
//  11  PopulationBlock    population engine block    block   leaf count  0     1%-ile trial q
//  12  BlameAttributed    failure causally classified block  seq/vertex  rcvr  FailureClass
//  13  DesignServed       design service answered    block   DesignSource 0    latency (s)
//
// "actor" is a receiver id (0 for sender-side events); "value" is the one
// floating-point payload an event carries (estimates, loss rates, flags).
// RedesignTriggered packs its reason into `index` (see RedesignReason).
//
// Ids are STABLE: they appear in exported JSONL consumed by tools/trace_check
// and by expectation suites, so renumbering breaks recorded traces. Append
// new events at the end; never reuse an id.
//
// Emission goes through MCAUTH_OBS_EVENT (obs/obs.hpp), which compiles to
// nothing under MCAUTH_OBS_ENABLED=0 and costs one branch when tracing is
// off. Events land in the same TSan-clean ring as plain instants, flow to
// the Chrome view as instants-with-args, and export as JSONL (one object
// per line, meta header first) for offline conformance checking.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace mcauth::obs {

enum class EventId : std::uint16_t {
    kNone = 0,  // unstructured slot (plain span/instant)
    kPacketEmitted = 1,
    kPacketReceived = 2,
    kPacketVerified = 3,
    kPacketRejected = 4,
    kPacketUnverifiable = 5,
    kSignatureLost = 6,
    kQHatUpdated = 7,
    kFeedbackReceived = 8,
    kRedesignTriggered = 9,
    kRegimeShift = 10,
    kPopulationBlock = 11,
    kBlameAttributed = 12,
    /// The design service answered a request. `index` is the
    /// design::DesignSource (0 fresh, 1 cache, 2 frontier), `value` the
    /// serve latency in seconds, `block` the design epoch the request was
    /// made for (the boundary block of the redesign that motivated it).
    kDesignServed = 13,
};

/// Why the adaptive controller re-ran the designer; carried in the `index`
/// field of RedesignTriggered.
enum class RedesignReason : std::uint32_t {
    kInitial = 1,     // first design at session start
    kLossDrift = 2,   // aggregated q_hat drifted past hysteresis
    kBurstRegime = 3, // burst-length estimate crossed the dead-band
};

/// Stable wire name for an event id ("PacketEmitted", ...); "Unknown" for
/// ids this build does not know.
const char* event_name(EventId id) noexcept;
const char* redesign_reason_name(RedesignReason reason) noexcept;

/// A decoded structured event — the unit the expectation engine consumes.
/// Identical information to TraceEvent minus the span-only fields.
struct Event {
    EventId id = EventId::kNone;
    std::uint32_t block = 0;
    std::uint32_t index = 0;
    std::uint32_t actor = 0;
    double value = 0.0;
    std::uint64_t ts_ns = 0;
};

/// Record a structured event into the global trace ring and forward it to
/// the installed EventSink (if any). Called via MCAUTH_OBS_EVENT; callable
/// directly from tests. Gated on enabled() && trace_enabled() by the macro,
/// not here — direct callers always record.
void emit_event(EventId id, std::uint32_t block, std::uint32_t index,
                std::uint32_t actor, double value) noexcept;

/// Online event listener. The conformance checker installs one for the
/// duration of a run (see obs::OnlineConformance in expect.hpp); the hot
/// path pays one relaxed atomic load when no sink is installed.
class EventSink {
public:
    virtual ~EventSink() = default;
    virtual void on_event(const Event& ev) = 0;
};

/// Install `sink` as the process-wide listener (nullptr to uninstall).
/// Returns the previous sink. Not safe to swap while emitters are running
/// in other threads — install before the workload, remove after.
EventSink* set_event_sink(EventSink* sink) noexcept;
EventSink* event_sink() noexcept;

/// True if the trace slot carries a structured event; decode it.
bool decode_event(const TraceEvent& slot, Event& out) noexcept;

/// Extract the structured events from a trace snapshot, oldest first.
std::vector<Event> extract_events(const std::vector<TraceEvent>& snapshot);

/// JSONL export: first line is a meta object
///   {"meta": {"schema": "mcauth-events-v1", "dropped_events": N}}
/// then one event per line:
///   {"id": 3, "name": "PacketVerified", "block": 4, "index": 7,
///    "actor": 2, "value": 0, "ts_ns": 123}
/// The dropped_events count makes ring truncation visible to offline
/// tooling (trace_check treats dropped>0 as "history is partial").
std::string events_to_jsonl(const std::vector<Event>& events,
                            std::uint64_t dropped_events);
/// Snapshot the global recorder and write its structured events as JSONL.
/// Returns false on I/O failure.
bool write_events_jsonl(const std::string& path);

/// Parse statistics surfaced alongside the decoded events.
struct JsonlStats {
    /// Ring-truncation count from the meta header.
    std::uint64_t dropped_events = 0;
    /// Malformed lines skipped (truncated/garbage trailers from killed
    /// runs): unparseable JSON, non-object lines, objects without "id".
    std::uint64_t skipped_lines = 0;
};

/// Parse a JSONL event stream produced by events_to_jsonl. Malformed lines
/// (partial writes from killed runs) are SKIPPED and counted in
/// `stats.skipped_lines` rather than failing the parse; unknown ids are
/// kept so newer traces degrade gracefully in older checkers. Still
/// returns false (with a message in `error`) on structural problems: a
/// missing or duplicate meta header.
bool parse_events_jsonl(std::istream& in, std::vector<Event>& out, JsonlStats& stats,
                        std::string& error);

/// Back-compat wrapper: same, exposing only the dropped-event count.
bool parse_events_jsonl(std::istream& in, std::vector<Event>& out,
                        std::uint64_t& dropped_events, std::string& error);

}  // namespace mcauth::obs

// Causal loss attribution: WHY was a packet unverifiable?
//
// The event layer (obs/events.hpp) records THAT a packet was rejected or
// unverifiable; this layer walks the realized loss pattern against the
// dependence graph and answers which structural failure caused it:
//
//   kPacketLost      the packet itself never arrived — nothing graph-
//                    theoretical about it, but it must be counted so every
//                    failed packet lands in exactly one class;
//   kSignatureLost   the packet arrived but the block signature did not, so
//                    no path can terminate (the paper's "P_sign delivered"
//                    assumption violated);
//   kPathsCut        packet and signature arrived, but every root->v hash
//                    path contains a lost packet.
//
// For kPathsCut the interesting question is WHICH loss cut the paths. Two
// regimes, in priority order:
//
//   1. Dominator blame. If an interior dominator of v (graph/algorithms
//      .hpp) was lost, that single packet provably severed every path —
//      blame each lost dominator d, plus the edges d->w that lead back
//      into v's ancestor cone (the hash links the loss invalidated).
//   2. Residual-cut sweep. With every dominator delivered the cut is a
//      combination of losses. The blame set is the loss frontier: every
//      lost ancestor u of v that a verified hash chain actually reached
//      (some predecessor of u is reachable). Any root->v path must cross
//      this frontier — its first non-reachable vertex is lost and has a
//      reachable predecessor — so it is a genuine vertex cut, and it names
//      the losses closest to the working part of the graph.
//
// Blame is aggregated into BlameCounts — plain integer vectors keyed by
// vertex and by CSR edge index, mergeable across shards exactly like the
// population sketches (integer adds, shard order irrelevant). The 64-lane
// attribute_lanes() is bit-for-bit equal to 64 scalar attribute() calls,
// which is what lets bench/perf_attrib gate blame determinism with the
// same engine-vs-oracle identity trick as perf_population.
//
// Dependency note: this sits in the obs library but deliberately takes a
// plain Digraph (graph layer), not core/DependenceGraph — core links obs,
// so obs cannot look upward. Callers pass dg.graph() and translate send
// positions to vertices themselves.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"

namespace mcauth::obs {

enum class FailureClass : std::uint8_t {
    kNone = 0,           // not a loss failure (e.g. crypto reject, paths intact)
    kPacketLost = 1,     // the packet itself was dropped
    kSignatureLost = 2,  // block signature missing: no path can terminate
    kPathsCut = 3,       // packet + signature arrived, every hash path severed
};

/// Stable wire name ("none", "packet-lost", "signature-lost", "paths-cut").
const char* failure_class_name(FailureClass cls) noexcept;

/// Mergeable blame tallies. `edge` is indexed by the attributor's CSR edge
/// order (BlameAttributor::edge(i) names the endpoints), `vertex` by vertex
/// id. Merging is integer adds all the way down, so shard grouping never
/// changes a bit — same contract as pop::PopulationAggregate.
struct BlameCounts {
    std::vector<std::uint64_t> edge;
    std::vector<std::uint64_t> vertex;
    /// Indexed by FailureClass; kNone is never counted.
    std::array<std::uint64_t, 4> by_class{};
    std::uint64_t attributed = 0;   // failures classified (one class each)
    std::uint64_t sampled_out = 0;  // failures skipped by 1-in-N sampling

    void merge(const BlameCounts& other);
    /// Bit-exact equality — the determinism gate.
    bool identical(const BlameCounts& other) const;
};

/// Precomputed attribution structure for one dependence graph: flat CSR
/// adjacency with stable edge ids, immediate + interior dominators, and
/// per-vertex descendant bitsets (is u on some root->v path?). Build once
/// per design, reuse across blocks/receivers; const methods are safe to
/// call concurrently with caller-owned Scratch/BlameCounts.
class BlameAttributor {
public:
    /// `g` must be a DAG (asserted). `root` is the signature vertex.
    explicit BlameAttributor(const Digraph& g, VertexId root = 0);

    std::size_t vertex_count() const noexcept { return succ_offset_.size() - 1; }
    std::size_t edge_count() const noexcept { return succ_.size(); }
    VertexId root() const noexcept { return root_; }
    /// Endpoints of CSR edge i (the index space of BlameCounts::edge).
    std::pair<VertexId, VertexId> edge(std::size_t i) const noexcept {
        return {edge_from_[i], succ_[i]};
    }

    /// Per-pattern scratch: byte masks over vertices (nonzero = true).
    /// Callers fill `received`, begin_pattern() derives `reach`.
    struct Scratch {
        std::vector<std::uint8_t> received;
        std::vector<std::uint8_t> reach;
        std::vector<VertexId> stack;
    };
    Scratch make_scratch() const;

    /// Finalize a loss pattern: forces received[root] = 1 (the kernel
    /// convention — signature presence is passed separately to attribute())
    /// and recomputes `reach` = vertices with a fully-received root path.
    void begin_pattern(Scratch& s) const;

    /// Classify one failed packet and charge its blame. Call after
    /// begin_pattern(); `v` is a vertex id (not a send position). Returns
    /// kNone — and charges nothing — when v was received and reachable
    /// (a crypto reject with intact paths is not a loss failure).
    FailureClass attribute(VertexId v, bool signature_received, Scratch& s,
                           BlameCounts& counts) const;

    /// 64-lane word-parallel attribution over a whole block: `alive` and
    /// `reach` are vertex-indexed words as produced by
    /// reachable_within_bitsliced (bit l = trial lane l), with the root
    /// treated as delivered (lanes where the signature was genuinely lost
    /// must be handled by the caller; here kSignatureLost never fires).
    /// Charges every non-root vertex's failures across all 64 lanes;
    /// bit-identical to 64 scalar attribute() calls. `frontier` is caller
    /// scratch (resized to vertex_count()).
    void attribute_lanes(const std::uint64_t* alive, const std::uint64_t* reach,
                         std::vector<std::uint64_t>& frontier,
                         BlameCounts& counts) const;

private:
    void blame_vertex(VertexId u, VertexId v, std::uint64_t weight,
                      BlameCounts& counts) const;
    bool on_path_to(VertexId u, VertexId v) const noexcept {
        return (desc_[u * desc_words_ + (v >> 6)] >> (v & 63)) & 1u;
    }

    VertexId root_ = 0;
    // Flat successor CSR; edge id = position in succ_. edge_from_[i] is the
    // source of edge i (succ_ holds the target).
    std::vector<std::uint32_t> succ_offset_;
    std::vector<VertexId> succ_;
    std::vector<VertexId> edge_from_;
    std::vector<std::uint32_t> pred_offset_;
    std::vector<VertexId> pred_;
    std::vector<VertexId> topo_;
    std::vector<VertexId> idom_;
    // Interior dominators of v (strictly between root and v), flattened.
    std::vector<std::uint32_t> dom_offset_;
    std::vector<VertexId> dom_chain_;
    // desc_[u] bitset: bit v set iff there is a u->...->v path (v == u
    // included) — "u lies on some root->v path" once u is known reachable.
    std::size_t desc_words_ = 0;
    std::vector<std::uint64_t> desc_;
};

/// Export nonzero blame tallies into the global MetricsRegistry under
/// `prefix`: <prefix>.attributed, <prefix>.sampled_out,
/// <prefix>.class.{packet_lost,signature_lost,paths_cut}, and
/// <prefix>.edge.<u>><v> for each nonzero edge. No-op when obs::enabled()
/// is false. Counters add (registry totals accumulate across flushes).
void flush_blame_counters(const BlameAttributor& attrib, const BlameCounts& counts,
                          std::string_view prefix);

}  // namespace mcauth::obs

#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <thread>

#include "obs/clock.hpp"
#include "util/check.hpp"

namespace mcauth::obs {

namespace {

std::uint32_t this_thread_id() noexcept {
    // Stable, compact per-thread id for the trace "tid" field. Hash collisions
    // would only merge two threads' lanes in the viewer — harmless.
    static thread_local const std::uint32_t tid = static_cast<std::uint32_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7fffffffu);
    return tid;
}

std::string json_escape_name(const char* name) {
    std::string out;
    for (const char* p = name; *p != '\0'; ++p) {
        const char ch = *p;
        if (ch == '"' || ch == '\\') {
            out += '\\';
            out += ch;
        } else if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", ch);
            out += buf;
        } else {
            out += ch;
        }
    }
    return out;
}

std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : ring_(std::make_unique<Slot[]>(capacity)), capacity_(capacity) {
    MCAUTH_EXPECTS(capacity >= 1);
}

void TraceRecorder::record(const char* name, char phase) noexcept {
    record_at(name, phase, clock().now_ns());
}

void TraceRecorder::record_at(const char* name, char phase,
                              std::uint64_t ts_ns) noexcept {
    write_slot(name, phase, ts_ns, 0, 0, 0, 0, 0.0);
}

void TraceRecorder::record_structured(const char* name, std::uint16_t id,
                                      std::uint32_t block, std::uint32_t index,
                                      std::uint32_t actor, double value,
                                      std::uint64_t ts_ns) noexcept {
    write_slot(name, 'i', ts_ns, id, block, index, actor, value);
}

void TraceRecorder::write_slot(const char* name, char phase, std::uint64_t ts_ns,
                               std::uint16_t id, std::uint32_t block,
                               std::uint32_t index, std::uint32_t actor,
                               double value) noexcept {
    const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = ring_[idx % capacity_];
    slot.name.store(name, std::memory_order_relaxed);
    slot.phase.store(phase, std::memory_order_relaxed);
    slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
    slot.tid.store(this_thread_id(), std::memory_order_relaxed);
    slot.id.store(id, std::memory_order_relaxed);
    slot.block.store(block, std::memory_order_relaxed);
    slot.index.store(index, std::memory_order_relaxed);
    slot.actor.store(actor, std::memory_order_relaxed);
    slot.value.store(value, std::memory_order_relaxed);
    // Publish: the stamp is the reader's proof the fields above are complete.
    slot.seq.store(idx + 1, std::memory_order_release);
}

std::size_t TraceRecorder::size() const noexcept {
    const std::uint64_t n = recorded();
    return n < capacity_ ? static_cast<std::size_t>(n) : capacity_;
}

std::uint64_t TraceRecorder::dropped() const noexcept {
    const std::uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
}

void TraceRecorder::clear() noexcept {
    next_.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < capacity_; ++i)
        ring_[i].seq.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
    const std::uint64_t n = recorded();
    const std::size_t cap = capacity_;
    const std::size_t count = n < cap ? static_cast<std::size_t>(n) : cap;
    const std::size_t start = n > cap ? static_cast<std::size_t>(n % cap) : 0;
    std::vector<TraceEvent> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const Slot& slot = ring_[(start + i) % cap];
        // Seqlock-style validated copy: stamp before, fields, stamp after.
        // A changed or zero stamp means a writer was mid-overwrite (or the
        // slot was cleared) — drop the slot rather than emit a torn event.
        for (int attempt = 0; attempt < 3; ++attempt) {
            const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
            if (s1 == 0) break;
            TraceEvent ev;
            ev.name = slot.name.load(std::memory_order_relaxed);
            ev.phase = slot.phase.load(std::memory_order_relaxed);
            ev.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
            ev.tid = slot.tid.load(std::memory_order_relaxed);
            ev.id = slot.id.load(std::memory_order_relaxed);
            ev.block = slot.block.load(std::memory_order_relaxed);
            ev.index = slot.index.load(std::memory_order_relaxed);
            ev.actor = slot.actor.load(std::memory_order_relaxed);
            ev.value = slot.value.load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            if (slot.seq.load(std::memory_order_relaxed) == s1) {
                out.push_back(ev);
                break;
            }
        }
    }
    return out;
}

std::string TraceRecorder::to_json() const {
    std::string out = "{\"displayTimeUnit\": \"ms\", \"dropped_events\": " +
                      std::to_string(dropped()) + ", \"traceEvents\": [";
    bool first = true;
    for (const TraceEvent& ev : snapshot()) {
        if (ev.name == nullptr) continue;
        out += first ? "\n" : ",\n";
        first = false;
        char ts[48];
        // Chrome expects microseconds; keep nanosecond resolution as decimals.
        std::snprintf(ts, sizeof ts, "%llu.%03llu",
                      static_cast<unsigned long long>(ev.ts_ns / 1000),
                      static_cast<unsigned long long>(ev.ts_ns % 1000));
        out += "  {\"name\": \"" + json_escape_name(ev.name) + "\", \"cat\": \"mcauth\"";
        out += ", \"ph\": \"";
        out += ev.phase;
        out += "\", \"pid\": 1, \"tid\": " + std::to_string(ev.tid);
        out += ", \"ts\": ";
        out += ts;
        if (ev.phase == 'i') out += ", \"s\": \"t\"";
        if (ev.id != 0) {
            out += ", \"args\": {\"id\": " + std::to_string(ev.id);
            out += ", \"block\": " + std::to_string(ev.block);
            out += ", \"index\": " + std::to_string(ev.index);
            out += ", \"actor\": " + std::to_string(ev.actor);
            out += ", \"value\": " + format_double(ev.value) + "}";
        }
        out += "}";
    }
    out += first ? "]}\n" : "\n]}\n";
    return out;
}

bool TraceRecorder::write_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_json();
    return static_cast<bool>(out);
}

TraceRecorder& TraceRecorder::global() {
    static TraceRecorder instance;
    return instance;
}

}  // namespace mcauth::obs

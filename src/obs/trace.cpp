#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <thread>

#include "obs/clock.hpp"
#include "util/check.hpp"

namespace mcauth::obs {

namespace {

std::uint32_t this_thread_id() noexcept {
    // Stable, compact per-thread id for the trace "tid" field. Hash collisions
    // would only merge two threads' lanes in the viewer — harmless.
    static thread_local const std::uint32_t tid = static_cast<std::uint32_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7fffffffu);
    return tid;
}

std::string json_escape_name(const char* name) {
    std::string out;
    for (const char* p = name; *p != '\0'; ++p) {
        const char ch = *p;
        if (ch == '"' || ch == '\\') {
            out += '\\';
            out += ch;
        } else if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", ch);
            out += buf;
        } else {
            out += ch;
        }
    }
    return out;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity) : ring_(capacity) {
    MCAUTH_EXPECTS(capacity >= 1);
}

void TraceRecorder::record(const char* name, char phase) noexcept {
    record_at(name, phase, clock().now_ns());
}

void TraceRecorder::record_at(const char* name, char phase,
                              std::uint64_t ts_ns) noexcept {
    const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    TraceEvent& slot = ring_[idx % ring_.size()];
    slot.name = name;
    slot.phase = phase;
    slot.ts_ns = ts_ns;
    slot.tid = this_thread_id();
}

std::size_t TraceRecorder::size() const noexcept {
    const std::uint64_t n = recorded();
    return n < ring_.size() ? static_cast<std::size_t>(n) : ring_.size();
}

std::uint64_t TraceRecorder::dropped() const noexcept {
    const std::uint64_t n = recorded();
    return n > ring_.size() ? n - ring_.size() : 0;
}

void TraceRecorder::clear() noexcept { next_.store(0, std::memory_order_relaxed); }

std::vector<TraceEvent> TraceRecorder::snapshot() const {
    const std::uint64_t n = recorded();
    const std::size_t cap = ring_.size();
    const std::size_t count = n < cap ? static_cast<std::size_t>(n) : cap;
    const std::size_t start = n > cap ? static_cast<std::size_t>(n % cap) : 0;
    std::vector<TraceEvent> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(ring_[(start + i) % cap]);
    return out;
}

std::string TraceRecorder::to_json() const {
    std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const TraceEvent& ev : snapshot()) {
        if (ev.name == nullptr) continue;
        out += first ? "\n" : ",\n";
        first = false;
        char ts[48];
        // Chrome expects microseconds; keep nanosecond resolution as decimals.
        std::snprintf(ts, sizeof ts, "%llu.%03llu",
                      static_cast<unsigned long long>(ev.ts_ns / 1000),
                      static_cast<unsigned long long>(ev.ts_ns % 1000));
        out += "  {\"name\": \"" + json_escape_name(ev.name) + "\", \"cat\": \"mcauth\"";
        out += ", \"ph\": \"";
        out += ev.phase;
        out += "\", \"pid\": 1, \"tid\": " + std::to_string(ev.tid);
        out += ", \"ts\": ";
        out += ts;
        if (ev.phase == 'i') out += ", \"s\": \"t\"";
        out += "}";
    }
    out += first ? "]}\n" : "\n]}\n";
    return out;
}

bool TraceRecorder::write_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_json();
    return static_cast<bool>(out);
}

TraceRecorder& TraceRecorder::global() {
    static TraceRecorder instance;
    return instance;
}

}  // namespace mcauth::obs

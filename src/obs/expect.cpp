#include "obs/expect.hpp"

#include <cmath>
#include <cstdio>
#include <mutex>

#include "util/check.hpp"

namespace mcauth::obs {

namespace {

// Scope-key packing (limits documented on Scope). kActorBlockIndex is the
// only lossy-looking one; its field widths exceed every committed scenario
// by orders of magnitude and MCAUTH_EXPECTS below guards the assumption.
std::uint64_t scope_key(Scope scope, const Event& ev) {
    switch (scope) {
        case Scope::kBlock:
            return ev.block;
        case Scope::kActorBlock:
            return (static_cast<std::uint64_t>(ev.actor) << 32) | ev.block;
        case Scope::kBlockIndex:
            return (static_cast<std::uint64_t>(ev.block) << 32) | ev.index;
        case Scope::kActorBlockIndex:
            MCAUTH_EXPECTS(ev.actor < (1u << 16) && ev.block < (1u << 24) &&
                           ev.index < (1u << 24));
            return (static_cast<std::uint64_t>(ev.actor) << 48) |
                   (static_cast<std::uint64_t>(ev.block) << 24) | ev.index;
    }
    return 0;
}

std::string describe_event(const Event& ev) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s{block=%u, index=%u, actor=%u, value=%g}",
                  event_name(ev.id), ev.block, ev.index, ev.actor, ev.value);
    return buf;
}

}  // namespace

std::string ConformanceReport::render_text() const {
    char head[160];
    std::snprintf(head, sizeof head,
                  "suite %s: %s (%zu rules, %llu events, %llu violations%s)\n",
                  suite.c_str(), ok() ? "PASS" : "FAIL", rules,
                  static_cast<unsigned long long>(events_seen),
                  static_cast<unsigned long long>(total_violations),
                  partial ? ", partial trace" : "");
    std::string out = head;
    for (const Violation& v : violations)
        out += "  [" + v.rule + "] " + v.message + "\n";
    if (total_violations > violations.size())
        out += "  ... " +
               std::to_string(total_violations - violations.size()) +
               " more\n";
    return out;
}

ExpectationSuite& ExpectationSuite::expect(std::string rule_name,
                                           EventId subject,
                                           std::function<bool(const Event&)> pred,
                                           std::string description) {
    Rule rule;
    rule.kind = Rule::Kind::kPredicate;
    rule.name = std::move(rule_name);
    rule.description = std::move(description);
    rule.subject = subject;
    rule.predicate = std::move(pred);
    rules_.push_back(std::move(rule));
    return *this;
}

ExpectationSuite& ExpectationSuite::require_before(std::string rule_name,
                                                   EventId subject,
                                                   EventId anchor, Scope scope,
                                                   bool anchor_signature_only) {
    Rule rule;
    rule.kind = Rule::Kind::kPrecedence;
    rule.name = std::move(rule_name);
    rule.subject = subject;
    rule.anchor = anchor;
    rule.scope = scope;
    rule.anchor_signature_only = anchor_signature_only;
    rules_.push_back(std::move(rule));
    return *this;
}

ExpectationSuite& ExpectationSuite::forbid_after(std::string rule_name,
                                                 EventId anchor,
                                                 EventId subject, Scope scope) {
    Rule rule;
    rule.kind = Rule::Kind::kForbidAfter;
    rule.name = std::move(rule_name);
    rule.subject = subject;
    rule.anchor = anchor;
    rule.scope = scope;
    rules_.push_back(std::move(rule));
    return *this;
}

ExpectationSuite& ExpectationSuite::within_blocks(std::string rule_name,
                                                  EventId trigger,
                                                  EventId response,
                                                  std::uint32_t max_lag_blocks) {
    MCAUTH_EXPECTS(max_lag_blocks < ConformanceChecker::kBlockWindow);
    Rule rule;
    rule.kind = Rule::Kind::kBoundedLag;
    rule.name = std::move(rule_name);
    rule.anchor = trigger;
    rule.subject = response;
    rule.max_lag_blocks = max_lag_blocks;
    rules_.push_back(std::move(rule));
    return *this;
}

ExpectationSuite& ExpectationSuite::include(const ExpectationSuite& other) {
    for (const Rule& rule : other.rules()) rules_.push_back(rule);
    return *this;
}

ConformanceChecker::ConformanceChecker(const ExpectationSuite& suite,
                                       bool skip_partial)
    : suite_(suite), skip_partial_(skip_partial) {
    report_.suite = suite.name();
    report_.rules = suite.rules().size();
    report_.partial = skip_partial;
    precedence_.resize(suite.rules().size());
    lag_.resize(suite.rules().size());
}

void ConformanceChecker::add_violation(const Rule& rule, const Event& ev,
                                       std::string message) {
    ++report_.total_violations;
    if (report_.violations.size() < ConformanceReport::kMaxDetailedViolations) {
        Violation v;
        v.rule = rule.name;
        v.message = std::move(message);
        v.event = ev;
        report_.violations.push_back(std::move(v));
    }
}

void ConformanceChecker::prune(std::uint32_t watermark) {
    // Amortize: only sweep when the watermark has moved a quarter-window
    // past the last sweep.
    if (watermark < pruned_below_ + kBlockWindow / 4) return;
    pruned_below_ = watermark;
    const std::uint32_t low =
        watermark > kBlockWindow ? watermark - kBlockWindow : 0;
    for (PrecedenceState& state : precedence_) {
        for (auto it = state.anchors.begin(); it != state.anchors.end();) {
            if (it->second < low)
                it = state.anchors.erase(it);
            else
                ++it;
        }
    }
}

bool ConformanceChecker::in_partial_prefix(const Event& ev) {
    // On a wrapped trace, each actor's first observed block may be missing
    // its earlier events (the ring retains a contiguous suffix, so every
    // later block is complete). Suppress anchor-dependent checks there.
    if (!skip_partial_) return false;
    const auto it = first_block_.find(ev.actor);
    return it != first_block_.end() && ev.block <= it->second;
}

void ConformanceChecker::on_event(const Event& ev) {
    MCAUTH_EXPECTS(!finished_);
    ++report_.events_seen;
    first_block_.emplace(ev.actor, ev.block);
    if (ev.block > max_block_) {
        max_block_ = ev.block;
        prune(max_block_);
    }

    const std::vector<Rule>& rules = suite_.rules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        const Rule& rule = rules[i];
        switch (rule.kind) {
            case Rule::Kind::kPredicate:
                if (ev.id == rule.subject && !rule.predicate(ev))
                    add_violation(rule, ev,
                                  describe_event(ev) + " fails predicate (" +
                                      rule.description + ")");
                break;
            case Rule::Kind::kPrecedence: {
                PrecedenceState& state = precedence_[i];
                if (ev.id == rule.anchor &&
                    (!rule.anchor_signature_only || ev.value == 1.0)) {
                    state.anchors.emplace(scope_key(rule.scope, ev), ev.block);
                }
                if (ev.id == rule.subject && !in_partial_prefix(ev) &&
                    state.anchors.find(scope_key(rule.scope, ev)) ==
                        state.anchors.end()) {
                    add_violation(rule, ev,
                                  describe_event(ev) + " without prior " +
                                      event_name(rule.anchor) +
                                      (rule.anchor_signature_only
                                           ? " (signature)"
                                           : "") +
                                      " in scope");
                }
                break;
            }
            case Rule::Kind::kForbidAfter: {
                PrecedenceState& state = precedence_[i];
                if (ev.id == rule.anchor)
                    state.anchors.emplace(scope_key(rule.scope, ev), ev.block);
                if (ev.id == rule.subject && !in_partial_prefix(ev) &&
                    state.anchors.find(scope_key(rule.scope, ev)) !=
                        state.anchors.end()) {
                    add_violation(rule, ev,
                                  describe_event(ev) + " after " +
                                      event_name(rule.anchor) + " in scope");
                }
                break;
            }
            case Rule::Kind::kBoundedLag: {
                LagState& state = lag_[i];
                if (ev.id == rule.anchor) state.pending.push_back(ev);
                if (ev.id == rule.subject) {
                    // A response answers every trigger whose window it falls
                    // inside (a single redesign can serve coincident shifts).
                    std::erase_if(state.pending, [&](const Event& trig) {
                        return ev.block >= trig.block &&
                               ev.block <= trig.block + rule.max_lag_blocks;
                    });
                }
                // Expire triggers whose window the stream has moved past.
                for (auto it = state.pending.begin();
                     it != state.pending.end();) {
                    if (max_block_ > it->block + rule.max_lag_blocks) {
                        add_violation(rule, *it,
                                      "no " +
                                          std::string(event_name(rule.subject)) +
                                          " within " +
                                          std::to_string(rule.max_lag_blocks) +
                                          " blocks of " + describe_event(*it));
                        it = state.pending.erase(it);
                    } else {
                        ++it;
                    }
                }
                break;
            }
        }
    }
}

ConformanceReport ConformanceChecker::finish() {
    MCAUTH_EXPECTS(!finished_);
    finished_ = true;
    // Triggers whose deadline already passed relative to the last block seen
    // are violations; windows still open when the trace ends are not (the
    // run simply stopped inside them).
    const std::vector<Rule>& rules = suite_.rules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        if (rules[i].kind != Rule::Kind::kBoundedLag) continue;
        for (const Event& trig : lag_[i].pending) {
            if (max_block_ > trig.block + rules[i].max_lag_blocks)
                add_violation(rules[i], trig,
                              "no " +
                                  std::string(event_name(rules[i].subject)) +
                                  " within " +
                                  std::to_string(rules[i].max_lag_blocks) +
                                  " blocks of " + describe_event(trig));
        }
    }
    return report_;
}

struct OnlineConformance::Sink : EventSink {
    explicit Sink(const ExpectationSuite& suite)
        : checker(suite, /*skip_partial=*/false) {}
    void on_event(const Event& ev) override {
        std::lock_guard<std::mutex> lock(mu);
        checker.on_event(ev);
    }
    std::mutex mu;
    ConformanceChecker checker;
};

OnlineConformance::OnlineConformance(const ExpectationSuite& suite)
    : sink_(std::make_unique<Sink>(suite)) {
    set_event_sink(sink_.get());
}

OnlineConformance::~OnlineConformance() {
    if (!finished_) finish();
}

ConformanceReport OnlineConformance::finish() {
    if (finished_) return report_;
    finished_ = true;
    // Uninstall only if we are still the installed sink (a nested scope may
    // have replaced us — last writer wins, mirroring set_event_sink).
    if (event_sink() == sink_.get()) set_event_sink(nullptr);
    std::lock_guard<std::mutex> lock(sink_->mu);
    report_ = sink_->checker.finish();
    return report_;
}

namespace {

std::vector<ExpectationSuite> build_builtin_suites() {
    const auto is_probability = [](const Event& ev) {
        return std::isfinite(ev.value) && ev.value >= 0.0 && ev.value <= 1.0;
    };
    const auto is_binary_flag = [](const Event& ev) {
        return ev.value == 0.0 || ev.value == 1.0;
    };

    // stream-core: packet conservation + estimate sanity. Holds for every
    // scheme (sign-each, tree, hash-chain, TESLA) and every channel.
    ExpectationSuite stream_core("stream-core");
    stream_core
        .expect("emitted-flag-binary", EventId::kPacketEmitted, is_binary_flag,
                "PacketEmitted value is the 0/1 signature flag")
        .expect("received-flag-binary", EventId::kPacketReceived, is_binary_flag,
                "PacketReceived value is the 0/1 signature flag")
        .expect("qhat-in-unit-interval", EventId::kQHatUpdated, is_probability,
                "receiver loss estimate stays a finite probability")
        .require_before("received-implies-emitted", EventId::kPacketReceived,
                        EventId::kPacketEmitted, Scope::kBlockIndex)
        .require_before("verified-implies-received", EventId::kPacketVerified,
                        EventId::kPacketReceived, Scope::kActorBlockIndex);

    // hash-chain: the Chan03 signature-rooted-path guarantees. A packet can
    // only authenticate once its block's signature packet has arrived, and
    // never once the signature is known lost.
    ExpectationSuite hash_chain("hash-chain");
    hash_chain.include(stream_core)
        .require_before("verified-needs-signature", EventId::kPacketVerified,
                        EventId::kPacketReceived, Scope::kActorBlock,
                        /*anchor_signature_only=*/true)
        .forbid_after("no-verify-after-sig-loss", EventId::kSignatureLost,
                      EventId::kPacketVerified, Scope::kActorBlock);

    // adaptive-loop: the closed-loop reaction-time contract on top of the
    // hash-chain rules.
    ExpectationSuite adaptive("adaptive-loop");
    adaptive.include(hash_chain)
        .expect("feedback-qhat-valid", EventId::kFeedbackReceived,
                is_probability, "accepted feedback carries a valid estimate")
        .expect("redesign-has-reason", EventId::kRedesignTriggered,
                [](const Event& ev) { return ev.index >= 1 && ev.index <= 3; },
                "RedesignTriggered carries a known reason code")
        .within_blocks("redesign-follows-regime", EventId::kRegimeShift,
                       EventId::kRedesignTriggered, 16)
        .expect("design-served-source-known", EventId::kDesignServed,
                [](const Event& ev) { return ev.index <= 2; },
                "DesignServed carries a known source code")
        .within_blocks("design-served-after-redesign", EventId::kRedesignTriggered,
                       EventId::kDesignServed, 4);

    // population: sanity of the sharded population engine's per-block
    // summary events. Standalone (population runs emit no per-packet
    // events — that is the whole point of aggregation).
    ExpectationSuite population("population");
    population
        .expect("population-q-valid", EventId::kPopulationBlock, is_probability,
                "population tail quantile stays a finite probability")
        .expect("population-has-leaves", EventId::kPopulationBlock,
                [](const Event& ev) { return ev.index >= 1; },
                "population block covers at least one receiver");

    // population-loop: the population aggregate drives the adaptive
    // controller — feedback synthesized from each block, redesigns in
    // bounded time after a regime shift.
    ExpectationSuite population_loop("population-loop");
    population_loop.include(population)
        .expect("population-feedback-valid", EventId::kFeedbackReceived,
                is_probability, "synthesized feedback carries a valid estimate")
        .expect("population-redesign-has-reason", EventId::kRedesignTriggered,
                [](const Event& ev) { return ev.index >= 1 && ev.index <= 3; },
                "RedesignTriggered carries a known reason code")
        .within_blocks("population-feedback-flows", EventId::kPopulationBlock,
                       EventId::kFeedbackReceived, 2)
        .within_blocks("population-redesign-follows-regime",
                       EventId::kRegimeShift, EventId::kRedesignTriggered, 16);

    // attribution: every causal blame verdict names a loss class, and a
    // verdict only ever follows the unverifiable event it explains (same
    // receiver, block and packet index).
    ExpectationSuite attribution("attribution");
    attribution
        .expect("blame-class-is-loss", EventId::kBlameAttributed,
                [](const Event& ev) { return ev.value == 2.0 || ev.value == 3.0; },
                "BlameAttributed carries signature-lost or paths-cut")
        .require_before("blame-follows-unverifiable", EventId::kBlameAttributed,
                        EventId::kPacketUnverifiable, Scope::kActorBlockIndex);

    std::vector<ExpectationSuite> suites;
    suites.push_back(std::move(stream_core));
    suites.push_back(std::move(hash_chain));
    suites.push_back(std::move(adaptive));
    suites.push_back(std::move(population));
    suites.push_back(std::move(population_loop));
    suites.push_back(std::move(attribution));
    return suites;
}

const std::vector<ExpectationSuite>& builtin_suites() {
    static const std::vector<ExpectationSuite> suites = build_builtin_suites();
    return suites;
}

}  // namespace

const ExpectationSuite* find_suite(std::string_view name) {
    for (const ExpectationSuite& suite : builtin_suites())
        if (suite.name() == name) return &suite;
    return nullptr;
}

std::vector<std::string> suite_names() {
    std::vector<std::string> names;
    for (const ExpectationSuite& suite : builtin_suites())
        names.push_back(suite.name());
    return names;
}

ConformanceReport check_events(const ExpectationSuite& suite,
                               const std::vector<Event>& events,
                               std::uint64_t dropped_events) {
    ConformanceChecker checker(suite, /*skip_partial=*/dropped_events > 0);
    for (const Event& ev : events) checker.on_event(ev);
    return checker.finish();
}

}  // namespace mcauth::obs

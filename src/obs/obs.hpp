// mcauth_obs — cross-cutting observability: metrics, spans, traces.
//
// Instrumentation sites use the macros below, never the classes directly:
//
//   MCAUTH_OBS_COUNT("crypto.sha256.ops");              // +1
//   MCAUTH_OBS_COUNT_N("crypto.sha256.bytes", n);       // +n
//   MCAUTH_OBS_GAUGE_SET("sim.buffered", depth);        // level
//   MCAUTH_OBS_RECORD_NS("channel.delay", ns);          // histogram sample
//   MCAUTH_OBS_SPAN("sim.verify");                      // RAII span to the
//                                                       // histogram + trace
//   MCAUTH_OBS_INSTANT("sim.block_done");               // trace marker
//   MCAUTH_OBS_EVENT(kPacketVerified, blk, idx, rcvr, 0);  // structured
//                                                       // event (events.hpp)
//
// Keys must be string literals: each macro resolves its registry entry once
// (function-local static) and thereafter costs one relaxed-atomic op behind
// a runtime `obs::enabled()` check. Compiling with MCAUTH_OBS_ENABLED=0
// removes every site entirely, so predicted-vs-measured benches can prove
// the instrumentation itself is not part of the measurement.
#pragma once

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

#ifndef MCAUTH_OBS_ENABLED
#define MCAUTH_OBS_ENABLED 1
#endif

#if MCAUTH_OBS_ENABLED

#define MCAUTH_OBS_CONCAT_INNER(a, b) a##b
#define MCAUTH_OBS_CONCAT(a, b) MCAUTH_OBS_CONCAT_INNER(a, b)

#define MCAUTH_OBS_COUNT_N(key, n)                                      \
    do {                                                                \
        if (::mcauth::obs::enabled()) {                                 \
            static ::mcauth::obs::Counter& mcauth_obs_counter_ =        \
                ::mcauth::obs::registry().counter(key);                 \
            mcauth_obs_counter_.add(static_cast<std::uint64_t>(n));     \
        }                                                               \
    } while (0)

#define MCAUTH_OBS_COUNT(key) MCAUTH_OBS_COUNT_N(key, 1)

#define MCAUTH_OBS_GAUGE_SET(key, v)                                    \
    do {                                                                \
        if (::mcauth::obs::enabled()) {                                 \
            static ::mcauth::obs::Gauge& mcauth_obs_gauge_ =            \
                ::mcauth::obs::registry().gauge(key);                   \
            mcauth_obs_gauge_.set(static_cast<double>(v));              \
        }                                                               \
    } while (0)

#define MCAUTH_OBS_RECORD_NS(key, ns)                                    \
    do {                                                                 \
        if (::mcauth::obs::enabled()) {                                  \
            static ::mcauth::obs::LatencyHistogram& mcauth_obs_hist_ =   \
                ::mcauth::obs::registry().histogram(key);                \
            mcauth_obs_hist_.record_ns(static_cast<std::uint64_t>(ns));  \
        }                                                                \
    } while (0)

#define MCAUTH_OBS_SPAN(key)                                                   \
    ::mcauth::obs::ScopedTimer MCAUTH_OBS_CONCAT(mcauth_obs_span_, __LINE__)(  \
        [] {                                                                   \
            static ::mcauth::obs::LatencyHistogram& mcauth_obs_span_hist_ =    \
                ::mcauth::obs::registry().histogram(key);                      \
            return &mcauth_obs_span_hist_;                                     \
        }(),                                                                   \
        key)

#define MCAUTH_OBS_INSTANT(key)                                           \
    do {                                                                  \
        if (::mcauth::obs::enabled() && ::mcauth::obs::trace_enabled())   \
            ::mcauth::obs::TraceRecorder::global().record(key, 'i');      \
    } while (0)

// Structured event (events.hpp). `id` is an EventId enumerator name
// (without the EventId:: qualifier). Same gating as MCAUTH_OBS_INSTANT so
// benches that disable tracing pay only the two runtime-flag loads.
#define MCAUTH_OBS_EVENT(id, block, index, actor, value)                     \
    do {                                                                     \
        if (::mcauth::obs::enabled() && ::mcauth::obs::trace_enabled())      \
            ::mcauth::obs::emit_event(                                       \
                ::mcauth::obs::EventId::id,                                  \
                static_cast<std::uint32_t>(block),                           \
                static_cast<std::uint32_t>(index),                           \
                static_cast<std::uint32_t>(actor),                           \
                static_cast<double>(value));                                 \
    } while (0)

#else  // !MCAUTH_OBS_ENABLED

#define MCAUTH_OBS_COUNT_N(key, n) ((void)0)
#define MCAUTH_OBS_COUNT(key) ((void)0)
#define MCAUTH_OBS_GAUGE_SET(key, v) ((void)0)
#define MCAUTH_OBS_RECORD_NS(key, ns) ((void)0)
#define MCAUTH_OBS_SPAN(key) ((void)0)
#define MCAUTH_OBS_INSTANT(key) ((void)0)
// Swallow the payload expressions so variables computed only for emission
// don't warn as unused in instrumentation-free builds. `id` is a bare
// EventId enumerator token and cannot be evaluated here.
#define MCAUTH_OBS_EVENT(id, block, index, actor, value) \
    do {                                                 \
        (void)(block);                                   \
        (void)(index);                                   \
        (void)(actor);                                   \
        (void)(value);                                   \
    } while (0)

#endif  // MCAUTH_OBS_ENABLED

#include "obs/attrib.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "graph/algorithms.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace mcauth::obs {

namespace {

std::uint64_t at_or_zero(const std::vector<std::uint64_t>& v, std::size_t i) {
    return i < v.size() ? v[i] : 0;
}

void add_into(std::vector<std::uint64_t>& into, const std::vector<std::uint64_t>& from) {
    if (into.size() < from.size()) into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

bool same_values(const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
    const std::size_t n = std::max(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i)
        if (at_or_zero(a, i) != at_or_zero(b, i)) return false;
    return true;
}

}  // namespace

const char* failure_class_name(FailureClass cls) noexcept {
    switch (cls) {
        case FailureClass::kNone: return "none";
        case FailureClass::kPacketLost: return "packet-lost";
        case FailureClass::kSignatureLost: return "signature-lost";
        case FailureClass::kPathsCut: return "paths-cut";
    }
    return "unknown";
}

void BlameCounts::merge(const BlameCounts& other) {
    add_into(edge, other.edge);
    add_into(vertex, other.vertex);
    for (std::size_t i = 0; i < by_class.size(); ++i) by_class[i] += other.by_class[i];
    attributed += other.attributed;
    sampled_out += other.sampled_out;
}

bool BlameCounts::identical(const BlameCounts& other) const {
    return same_values(edge, other.edge) && same_values(vertex, other.vertex) &&
           by_class == other.by_class && attributed == other.attributed &&
           sampled_out == other.sampled_out;
}

BlameAttributor::BlameAttributor(const Digraph& g, VertexId root) : root_(root) {
    const std::size_t n = g.vertex_count();
    MCAUTH_EXPECTS(root < n);

    const auto order = topological_order(g);
    MCAUTH_EXPECTS(order.has_value());  // attribution walks a DAG
    topo_ = *order;

    succ_offset_.resize(n + 1, 0);
    pred_offset_.resize(n + 1, 0);
    succ_.reserve(g.edge_count());
    edge_from_.reserve(g.edge_count());
    pred_.reserve(g.edge_count());
    for (std::size_t v = 0; v < n; ++v) {
        const auto succs = g.successors(static_cast<VertexId>(v));
        succ_.insert(succ_.end(), succs.begin(), succs.end());
        edge_from_.insert(edge_from_.end(), succs.size(), static_cast<VertexId>(v));
        succ_offset_[v + 1] = static_cast<std::uint32_t>(succ_.size());
        const auto preds = g.predecessors(static_cast<VertexId>(v));
        pred_.insert(pred_.end(), preds.begin(), preds.end());
        pred_offset_[v + 1] = static_cast<std::uint32_t>(pred_.size());
    }

    idom_ = immediate_dominators(g, root);
    dom_offset_.resize(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
        const auto doms = interior_dominators(idom_, root, static_cast<VertexId>(v));
        dom_chain_.insert(dom_chain_.end(), doms.begin(), doms.end());
        dom_offset_[v + 1] = static_cast<std::uint32_t>(dom_chain_.size());
    }

    // desc_[u] = vertices reachable from u (u included); one reverse-topo
    // sweep since every successor's set is final before u needs it.
    desc_words_ = (n + 63) / 64;
    desc_.assign(n * desc_words_, 0);
    for (std::size_t i = topo_.size(); i-- > 0;) {
        const VertexId u = topo_[i];
        std::uint64_t* row = desc_.data() + std::size_t{u} * desc_words_;
        row[u >> 6] |= 1ULL << (u & 63);
        for (std::uint32_t e = succ_offset_[u]; e < succ_offset_[u + 1]; ++e) {
            const std::uint64_t* child = desc_.data() + std::size_t{succ_[e]} * desc_words_;
            for (std::size_t w = 0; w < desc_words_; ++w) row[w] |= child[w];
        }
    }
}

BlameAttributor::Scratch BlameAttributor::make_scratch() const {
    Scratch s;
    s.received.assign(vertex_count(), 0);
    s.reach.assign(vertex_count(), 0);
    s.stack.reserve(vertex_count());
    return s;
}

void BlameAttributor::begin_pattern(Scratch& s) const {
    const std::size_t n = vertex_count();
    MCAUTH_EXPECTS(s.received.size() == n);
    s.reach.assign(n, 0);
    s.received[root_] = 1;  // kernel convention: the root is always traversed
    s.stack.clear();
    s.stack.push_back(root_);
    s.reach[root_] = 1;
    while (!s.stack.empty()) {
        const VertexId u = s.stack.back();
        s.stack.pop_back();
        for (std::uint32_t e = succ_offset_[u]; e < succ_offset_[u + 1]; ++e) {
            const VertexId w = succ_[e];
            if (!s.reach[w] && s.received[w]) {
                s.reach[w] = 1;
                s.stack.push_back(w);
            }
        }
    }
}

void BlameAttributor::blame_vertex(VertexId u, VertexId v, std::uint64_t weight,
                                   BlameCounts& counts) const {
    counts.vertex[u] += weight;
    for (std::uint32_t e = succ_offset_[u]; e < succ_offset_[u + 1]; ++e)
        if (on_path_to(succ_[e], v)) counts.edge[e] += weight;
}

FailureClass BlameAttributor::attribute(VertexId v, bool signature_received, Scratch& s,
                                        BlameCounts& counts) const {
    const std::size_t n = vertex_count();
    MCAUTH_EXPECTS(v < n);
    if (counts.vertex.size() < n) counts.vertex.resize(n, 0);
    if (counts.edge.size() < edge_count()) counts.edge.resize(edge_count(), 0);

    if (!s.received[v]) {
        counts.by_class[static_cast<std::size_t>(FailureClass::kPacketLost)] += 1;
        counts.vertex[v] += 1;
        counts.attributed += 1;
        return FailureClass::kPacketLost;
    }
    if (!signature_received) {
        counts.by_class[static_cast<std::size_t>(FailureClass::kSignatureLost)] += 1;
        counts.vertex[root_] += 1;
        counts.attributed += 1;
        return FailureClass::kSignatureLost;
    }
    if (s.reach[v]) return FailureClass::kNone;  // paths intact; not loss-caused

    counts.by_class[static_cast<std::size_t>(FailureClass::kPathsCut)] += 1;
    counts.attributed += 1;
    bool dominator_blamed = false;
    for (std::uint32_t i = dom_offset_[v]; i < dom_offset_[v + 1]; ++i) {
        const VertexId d = dom_chain_[i];
        if (!s.received[d]) {
            blame_vertex(d, v, 1, counts);
            dominator_blamed = true;
        }
    }
    if (!dominator_blamed) {
        // Residual-cut sweep: the loss frontier — lost ancestors of v that a
        // verified chain reached — is a genuine root->v vertex cut.
        for (VertexId u = 0; u < n; ++u) {
            if (u == root_ || u == v || s.received[u] || !on_path_to(u, v)) continue;
            bool reached_pred = false;
            for (std::uint32_t e = pred_offset_[u]; e < pred_offset_[u + 1]; ++e)
                if (s.reach[pred_[e]]) {
                    reached_pred = true;
                    break;
                }
            if (reached_pred) blame_vertex(u, v, 1, counts);
        }
    }
    return FailureClass::kPathsCut;
}

void BlameAttributor::attribute_lanes(const std::uint64_t* alive,
                                      const std::uint64_t* reach,
                                      std::vector<std::uint64_t>& frontier,
                                      BlameCounts& counts) const {
    const std::size_t n = vertex_count();
    if (counts.vertex.size() < n) counts.vertex.resize(n, 0);
    if (counts.edge.size() < edge_count()) counts.edge.resize(edge_count(), 0);

    // Per-pattern loss frontier, all 64 lanes at once: lanes where u is lost
    // but some predecessor is reachable. The root is treated as delivered
    // (reachable_within_bitsliced's convention), so it never lands here.
    frontier.assign(n, 0);
    for (VertexId u = 0; u < n; ++u) {
        if (u == root_) continue;
        std::uint64_t from_preds = 0;
        for (std::uint32_t e = pred_offset_[u]; e < pred_offset_[u + 1]; ++e)
            from_preds |= reach[pred_[e]];
        frontier[u] = ~alive[u] & from_preds;
    }

    for (VertexId v = 0; v < n; ++v) {
        if (v == root_) continue;
        const std::uint64_t lost = ~alive[v];
        if (lost) {
            const auto w = static_cast<std::uint64_t>(std::popcount(lost));
            counts.by_class[static_cast<std::size_t>(FailureClass::kPacketLost)] += w;
            counts.vertex[v] += w;
            counts.attributed += w;
        }
        const std::uint64_t cut = alive[v] & ~reach[v];
        if (!cut) continue;
        const auto cut_w = static_cast<std::uint64_t>(std::popcount(cut));
        counts.by_class[static_cast<std::size_t>(FailureClass::kPathsCut)] += cut_w;
        counts.attributed += cut_w;

        std::uint64_t dom_any = 0;
        for (std::uint32_t i = dom_offset_[v]; i < dom_offset_[v + 1]; ++i)
            dom_any |= ~alive[dom_chain_[i]];
        for (std::uint32_t i = dom_offset_[v]; i < dom_offset_[v + 1]; ++i) {
            const VertexId d = dom_chain_[i];
            const std::uint64_t explained = cut & ~alive[d];
            if (explained)
                blame_vertex(d, v, static_cast<std::uint64_t>(std::popcount(explained)),
                             counts);
        }
        const std::uint64_t residual = cut & ~dom_any;
        if (!residual) continue;
        for (VertexId u = 0; u < n; ++u) {
            if (u == root_ || u == v || !on_path_to(u, v)) continue;
            const std::uint64_t blamed = residual & frontier[u];
            if (blamed)
                blame_vertex(u, v, static_cast<std::uint64_t>(std::popcount(blamed)),
                             counts);
        }
    }
}

void flush_blame_counters(const BlameAttributor& attrib, const BlameCounts& counts,
                          std::string_view prefix) {
    if (!enabled()) return;
    MetricsRegistry& reg = registry();
    const std::string base(prefix);
    reg.counter(base + ".attributed").add(counts.attributed);
    reg.counter(base + ".sampled_out").add(counts.sampled_out);
    reg.counter(base + ".class.packet_lost")
        .add(counts.by_class[static_cast<std::size_t>(FailureClass::kPacketLost)]);
    reg.counter(base + ".class.signature_lost")
        .add(counts.by_class[static_cast<std::size_t>(FailureClass::kSignatureLost)]);
    reg.counter(base + ".class.paths_cut")
        .add(counts.by_class[static_cast<std::size_t>(FailureClass::kPathsCut)]);
    for (std::size_t i = 0; i < counts.edge.size() && i < attrib.edge_count(); ++i) {
        if (counts.edge[i] == 0) continue;
        const auto [u, v] = attrib.edge(i);
        reg.counter(base + ".edge." + std::to_string(u) + ">" + std::to_string(v))
            .add(counts.edge[i]);
    }
}

}  // namespace mcauth::obs

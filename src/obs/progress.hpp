// Rate-limited live progress for long Monte-Carlo runs.
//
// The Monte-Carlo engines (core/authprob.cpp, core/tesla.cpp) construct a
// ProgressReporter around each run and tick() it once per completed shard
// from whichever pool thread finished it. When progress is disabled — the
// default — the reporter is inert: construction stores one relaxed load,
// tick() is a single branch, nothing is printed and no metric moves, so
// engines can instantiate it unconditionally and figure outputs stay
// byte-identical (progress writes to *stderr* only, never stdout/CSV).
//
// Enabled (`--progress` on any BenchMain bench, or set_progress_enabled),
// it maintains a throughput/ETA line:
//
//     [mc.authprob] 122880/200000 trials (61.4%)  6.1M/s  eta 0.0s
//
// rewritten in place at most once per min_interval_ns (default 200ms) of
// obs::clock() time — the clock indirection makes the rate limit testable
// with FakeClock — plus exec.progress.* gauges for scrapers:
//
//     exec.progress.done        units completed so far
//     exec.progress.total       units in this run
//     exec.progress.rate        units/sec since construction
//     exec.progress.eta_s       remaining / rate
//
// Concurrency: done_ is a relaxed fetch_add; printing is elected by a CAS
// on the last-print timestamp so exactly one shard's completion wins each
// interval and the stderr line never interleaves.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace mcauth::obs {

/// Master switch for live progress (default: off). Independent of
/// enabled(): progress is chatty and opt-in per run, not a metric.
bool progress_enabled() noexcept;
void set_progress_enabled(bool on) noexcept;

class ProgressReporter {
public:
    /// `label` must outlive the reporter (string literal at engine sites).
    /// `unit` names what is being counted (e.g. "trials").
    explicit ProgressReporter(const char* label, std::uint64_t total_units,
                              const char* unit = "trials",
                              std::uint64_t min_interval_ns = 200'000'000) noexcept;
    /// Prints a final 100% line (newline-terminated) if any line was shown.
    ~ProgressReporter();

    ProgressReporter(const ProgressReporter&) = delete;
    ProgressReporter& operator=(const ProgressReporter&) = delete;

    /// Record `units` more work done; thread-safe, callable from pool
    /// workers. No-op when the reporter was constructed disabled.
    void tick(std::uint64_t units) noexcept;

    bool active() const noexcept { return active_; }
    std::uint64_t done() const noexcept {
        return done_.load(std::memory_order_relaxed);
    }
    /// Times a status line was emitted (tests assert the rate limit here
    /// rather than scraping stderr).
    std::uint64_t emitted_lines() const noexcept {
        return emitted_.load(std::memory_order_relaxed);
    }
    /// The status line as it would print now (no side effects).
    std::string format_line() const;

private:
    void emit(std::uint64_t now_ns) noexcept;

    const char* label_;
    const char* unit_;
    std::uint64_t total_;
    std::uint64_t min_interval_ns_;
    bool active_ = false;
    std::uint64_t start_ns_ = 0;
    std::atomic<std::uint64_t> done_{0};
    std::atomic<std::uint64_t> last_print_ns_{0};
    std::atomic<std::uint64_t> emitted_{0};
};

}  // namespace mcauth::obs

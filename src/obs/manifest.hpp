// Run provenance manifest: the "where did this number come from" record
// embedded in every BENCH_*.json (DESIGN.md §9).
//
// Two benchmark results are comparable only when the things that move the
// needle — code revision, compiler and flags, CPU and its SIMD dispatch,
// thread count, seed — are either equal or their differences are visible.
// RunManifest captures exactly that set. collect() fills it from the build
// (git describe / compiler / flags are injected by CMake at configure
// time), the machine (/proc/cpuinfo, AVX2 dispatch decision, perf-counter
// availability) and the run parameters; to_json() renders a fixed field
// order so manifests diff cleanly and golden tests can compare strings.
//
// bench_compare (tools/) refuses to diff two results whose manifests make
// them incomparable (different seed or trial counts) and warns on the
// soft mismatches (different CPU, compiler, flags) — "comparable or
// provably not".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mcauth::obs {

struct RunManifest {
    /// Version of the BENCH_*.json envelope this manifest rides in; bump on
    /// any incompatible change to either. bench_compare hard-fails on
    /// files whose version it does not understand. v3 added the optional
    /// timeseries_out pointer (block-granular telemetry export); v2 files
    /// remain readable.
    static constexpr int kSchemaVersion = 3;

    int schema_version = kSchemaVersion;
    std::string bench;            ///< bench binary name (BenchMain name)
    std::string git_revision;     ///< `git describe --always --dirty` at configure
    std::string compiler;         ///< e.g. "GNU 13.3.0", "Clang 18.1.3"
    std::string compiler_flags;   ///< optimisation-relevant CXX flags
    std::string build_type;       ///< CMAKE_BUILD_TYPE
    std::string sanitizer;        ///< MCAUTH_SANITIZE ("" = none)
    bool obs_compiled_in = true;  ///< MCAUTH_OBS_ENABLED at compile time
    std::string cpu_model;        ///< /proc/cpuinfo "model name"
    bool cpu_avx2 = false;        ///< CPU reports AVX2
    bool bitslice_avx2_dispatch = false;  ///< kernel the Bernoulli sampler chose
    std::size_t hardware_threads = 0;
    std::size_t threads = 0;  ///< configured pool lanes for this run
    std::uint64_t seed = 0;
    std::size_t warmup = 0;
    std::size_t repeat = 0;
    std::string timestamp_utc;  ///< ISO-8601, second resolution
    std::string perf_counters;  ///< "available" | "unavailable"
    /// Path of the block-granular TimeSeries export written alongside this
    /// run ("" = none); rendered only when set, so runs without telemetry
    /// keep the v2 field layout.
    std::string timeseries_out;
    /// Precomputed design-frontier snapshot (design::Designer::
    /// frontier_json(), a single-line JSON object); "" = no frontier was
    /// precomputed. Rendered only when set — additive-optional, so the
    /// schema stays v3 and older readers skip the unknown field.
    std::string design_frontier;
    /// Obs counter snapshot attached at emit time (process totals at the
    /// moment the manifest was written); informational, never gated on.
    std::vector<std::pair<std::string, std::uint64_t>> metrics_counters;

    /// One expectation-suite verdict (obs/expect.hpp). Unlike the counters
    /// above, conformance IS gated on: bench_compare exits nonzero when the
    /// current file carries any violations, --report-only notwithstanding.
    struct ConformanceEntry {
        std::string suite;     ///< expectation-suite name
        std::string scenario;  ///< which part of the run ("" = whole run)
        std::uint64_t rules = 0;
        std::uint64_t events = 0;
        std::uint64_t violations = 0;
        bool partial = false;  ///< trace ring wrapped; precedence checks relaxed
        std::vector<std::string> details;  ///< first few violation messages
    };
    /// Emitted as a "conformance" array only when non-empty, so manifests
    /// from runs without suites render byte-identically to schema-v2 files
    /// that predate conformance.
    std::vector<ConformanceEntry> conformance;

    /// Fill every field from the build, the machine and the run parameters.
    /// Deterministic except for timestamp_utc and the machine probes.
    static RunManifest collect(std::string bench, std::uint64_t seed,
                               std::size_t threads, std::size_t warmup,
                               std::size_t repeat);

    /// Render as a JSON object with a fixed field order. Every line after
    /// the first is prefixed by `indent` spaces, the closing brace included,
    /// so the object embeds cleanly at any depth of a hand-rolled writer.
    std::string to_json(int indent = 0) const;
};

}  // namespace mcauth::obs

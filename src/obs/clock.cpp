#include "obs/clock.hpp"

#include <chrono>

namespace mcauth::obs {

namespace {

SteadyClock steady_clock_instance;
std::atomic<const Clock*> clock_override{nullptr};

}  // namespace

std::uint64_t SteadyClock::now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

const Clock& clock() noexcept {
    const Clock* c = clock_override.load(std::memory_order_acquire);
    return c ? *c : steady_clock_instance;
}

const Clock* set_clock(const Clock* c) noexcept {
    return clock_override.exchange(c, std::memory_order_acq_rel);
}

}  // namespace mcauth::obs

// Monotonic clock abstraction for the observability layer.
//
// Every timestamp in mcauth_obs (ScopedTimer spans, trace events) is read
// through the process-wide `clock()` so tests can install a FakeClock and
// make timing-dependent assertions deterministic. The default is the
// steady (monotonic) clock; wall clocks are never used — spans must not go
// backwards across NTP adjustments.
#pragma once

#include <atomic>
#include <cstdint>

namespace mcauth::obs {

class Clock {
public:
    virtual ~Clock() = default;

    /// Nanoseconds since an arbitrary fixed origin; monotone non-decreasing.
    virtual std::uint64_t now_ns() const noexcept = 0;
};

/// std::chrono::steady_clock — the production clock.
class SteadyClock final : public Clock {
public:
    std::uint64_t now_ns() const noexcept override;
};

/// Manually advanced clock for deterministic tests.
class FakeClock final : public Clock {
public:
    std::uint64_t now_ns() const noexcept override {
        return now_.load(std::memory_order_relaxed);
    }
    void set_ns(std::uint64_t t) noexcept { now_.store(t, std::memory_order_relaxed); }
    void advance_ns(std::uint64_t d) noexcept {
        now_.fetch_add(d, std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> now_{0};
};

/// The process clock all obs timestamps are read from.
const Clock& clock() noexcept;

/// Install `c` as the process clock (nullptr restores the steady clock).
/// Returns the previous override, nullptr if the steady clock was active.
/// The caller keeps ownership of `c` and must outlive all readers.
const Clock* set_clock(const Clock* c) noexcept;

}  // namespace mcauth::obs

#include "obs/perfctr.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mcauth::obs {

namespace {

std::atomic<bool> forced_unavailable_flag{false};

#if defined(__linux__)

struct EventSpec {
    std::uint32_t type;
    std::uint64_t config;
};

// Order matches the PerfReading fields read back in read_all().
constexpr EventSpec kEvents[PerfCounterSet::kEventCount] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

int open_event(const EventSpec& spec) noexcept {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof attr);
    attr.size = sizeof attr;
    attr.type = spec.type;
    attr.config = spec.config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;  // user-space work only; also needs less privilege
    attr.exclude_hv = 1;
    attr.inherit = 1;  // pool workers count too: the regions bracket
                       // parallel_for fan-outs
    // pid=0, cpu=-1: this process (and, via inherit, its children) on any CPU.
    const long fd = syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0);
    return fd < 0 ? -1 : static_cast<int>(fd);
}

#endif  // __linux__

}  // namespace

double PerfReading::ipc() const noexcept {
    if (cycles <= 0 || instructions < 0) return std::nan("");
    return static_cast<double>(instructions) / static_cast<double>(cycles);
}

double PerfReading::cache_miss_rate() const noexcept {
    if (cache_references <= 0 || cache_misses < 0) return std::nan("");
    return static_cast<double>(cache_misses) / static_cast<double>(cache_references);
}

double PerfReading::branch_miss_rate() const noexcept {
    if (branches <= 0 || branch_misses < 0) return std::nan("");
    return static_cast<double>(branch_misses) / static_cast<double>(branches);
}

std::string PerfReading::to_json() const {
    if (!available) return "\"unavailable\"";
    std::string out = "{";
    bool first = true;
    const auto field = [&](const char* name, std::int64_t v) {
        if (v < 0) return;
        if (!first) out += ", ";
        first = false;
        out += std::string("\"") + name + "\": " + std::to_string(v);
    };
    const auto ratio = [&](const char* name, double v) {
        if (std::isnan(v)) return;
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.4f", v);
        if (!first) out += ", ";
        first = false;
        out += std::string("\"") + name + "\": " + buf;
    };
    field("cycles", cycles);
    field("instructions", instructions);
    ratio("ipc", ipc());
    field("cache_references", cache_references);
    field("cache_misses", cache_misses);
    ratio("cache_miss_rate", cache_miss_rate());
    field("branches", branches);
    field("branch_misses", branch_misses);
    ratio("branch_miss_rate", branch_miss_rate());
    out += "}";
    return out;
}

PerfCounterSet::PerfCounterSet() {
    for (int& fd : fds_) fd = -1;
#if defined(__linux__)
    if (forced_unavailable()) return;
    for (int i = 0; i < kEventCount; ++i) fds_[i] = open_event(kEvents[i]);
#endif
}

PerfCounterSet::~PerfCounterSet() {
#if defined(__linux__)
    for (const int fd : fds_)
        if (fd >= 0) close(fd);
#endif
}

bool PerfCounterSet::available() const noexcept {
    for (const int fd : fds_)
        if (fd >= 0) return true;
    return false;
}

void PerfCounterSet::start() noexcept {
#if defined(__linux__)
    for (const int fd : fds_) {
        if (fd < 0) continue;
        ioctl(fd, PERF_EVENT_IOC_RESET, 0);
        ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
#endif
}

PerfReading PerfCounterSet::stop() noexcept {
#if defined(__linux__)
    for (const int fd : fds_)
        if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
#endif
    return read();
}

PerfReading PerfCounterSet::read() const noexcept {
    PerfReading r;
    std::int64_t* const slots[kEventCount] = {
        &r.cycles,       &r.instructions, &r.cache_references,
        &r.cache_misses, &r.branches,     &r.branch_misses,
    };
#if defined(__linux__)
    for (int i = 0; i < kEventCount; ++i) {
        if (fds_[i] < 0) continue;
        std::uint64_t value = 0;
        if (::read(fds_[i], &value, sizeof value) == sizeof value) {
            *slots[i] = static_cast<std::int64_t>(value);
            r.available = true;
        }
    }
#else
    (void)slots;
#endif
    return r;
}

void PerfCounterSet::set_forced_unavailable(bool on) noexcept {
    forced_unavailable_flag.store(on, std::memory_order_relaxed);
}

bool PerfCounterSet::forced_unavailable() noexcept {
    return forced_unavailable_flag.load(std::memory_order_relaxed);
}

}  // namespace mcauth::obs

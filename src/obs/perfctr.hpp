// Hardware performance counters via perf_event_open (Linux).
//
// PerfCounterSet opens one fd per counter (cycles, instructions, cache
// references/misses, branches/branch-misses) scoped to the calling thread
// plus its children, and PerfRegion brackets a region of interest:
//
//     obs::PerfCounterSet counters;            // open once per bench
//     obs::PerfReading reading;
//     {
//         obs::PerfRegion region(counters, &reading);
//         workload();
//     }   // reading now holds cycles/instructions/... for the region
//
// Degradation is the design center, not an afterthought: perf_event_open is
// routinely denied inside containers and CI sandboxes
// (kernel.perf_event_paranoid, seccomp), and an individual event can be
// unsupported on a given machine even when the syscall works. A counter
// that failed to open reads as -1 — "unavailable", never a fake zero — and
// a set where nothing opened has available() == false but is still safe to
// start/stop, so instrumented code needs no #ifdefs and no error paths.
// PerfRegion composes with ScopedTimer/MCAUTH_OBS_SPAN by simple
// juxtaposition (both are scope-bound; wall time comes from the span, the
// counter deltas from the region).
//
// set_forced_unavailable(true) makes every subsequently constructed set
// behave as if the syscall was denied — the fallback path is testable on
// machines where the real thing works.
#pragma once

#include <cstdint>
#include <string>

namespace mcauth::obs {

/// Counter deltas for one start()/stop() interval. A value of -1 means the
/// underlying event could not be opened or read; ratios derived from
/// unavailable inputs are NaN.
struct PerfReading {
    static constexpr std::int64_t kUnavailable = -1;

    bool available = false;  ///< at least one counter delivered a value
    std::int64_t cycles = kUnavailable;
    std::int64_t instructions = kUnavailable;
    std::int64_t cache_references = kUnavailable;
    std::int64_t cache_misses = kUnavailable;
    std::int64_t branches = kUnavailable;
    std::int64_t branch_misses = kUnavailable;

    /// Instructions per cycle; NaN unless both counters delivered.
    double ipc() const noexcept;
    /// cache_misses / cache_references in [0,1]; NaN unless both delivered.
    double cache_miss_rate() const noexcept;
    /// branch_misses / branches in [0,1]; NaN unless both delivered.
    double branch_miss_rate() const noexcept;

    /// `"unavailable"` (a JSON string) when !available, else an object with
    /// only the counters that delivered plus derived ratios:
    /// {"cycles": N, "instructions": N, "ipc": 1.84, ...}.
    std::string to_json() const;
};

class PerfCounterSet {
public:
    /// Opens the event fds; never throws. On any platform or in any sandbox
    /// where nothing can be opened the set is inert: available() == false,
    /// start()/stop() are no-ops, readings come back unavailable.
    PerfCounterSet();
    ~PerfCounterSet();

    PerfCounterSet(const PerfCounterSet&) = delete;
    PerfCounterSet& operator=(const PerfCounterSet&) = delete;

    /// True when at least one hardware event opened.
    bool available() const noexcept;

    /// Zero and enable all opened counters.
    void start() noexcept;
    /// Disable and read; counters that failed to open (or read) are
    /// kUnavailable in the result.
    PerfReading stop() noexcept;
    /// Read without disabling (counters keep running).
    PerfReading read() const noexcept;

    /// Test/CI hook: when true, every PerfCounterSet constructed afterwards
    /// acts as if perf_event_open was denied. Does not affect live sets.
    static void set_forced_unavailable(bool on) noexcept;
    static bool forced_unavailable() noexcept;

    static constexpr int kEventCount = 6;

private:
    int fds_[kEventCount];  // -1 = event unavailable
};

/// RAII bracket: starts `set` on construction, stops it and stores the
/// reading into `*out` (if non-null) on destruction.
class PerfRegion {
public:
    PerfRegion(PerfCounterSet& set, PerfReading* out) noexcept
        : set_(set), out_(out) {
        set_.start();
    }
    ~PerfRegion() {
        const PerfReading r = set_.stop();
        if (out_ != nullptr) *out_ = r;
    }

    PerfRegion(const PerfRegion&) = delete;
    PerfRegion& operator=(const PerfRegion&) = delete;

private:
    PerfCounterSet& set_;
    PerfReading* out_;
};

}  // namespace mcauth::obs

// Bounded trace-event recorder with Chrome trace-event JSON export.
//
// A TraceRecorder is a fixed-capacity ring buffer of begin/end/instant
// events. Recording is one relaxed fetch_add plus a handful of relaxed
// atomic stores — when the ring wraps, the oldest events are overwritten (a
// trace is a window onto the recent past, never an unbounded allocation).
// The export format is the Chrome trace-event JSON array understood by
// chrome://tracing and Perfetto (https://ui.perfetto.dev): load the file
// and the ScopedTimer spans from the simulator render as a flame graph per
// phase.
//
// Beyond plain named spans/instants, a slot can carry a *structured*
// payload (obs/events.hpp): a stable numeric event id plus
// {block, index, actor, value} fields. Structured events render in the
// Chrome view as instants with an "args" object and export losslessly to
// JSONL for the conformance checker (obs/expect.hpp). The recorder itself
// stays schema-agnostic — ids and field meanings live in events.hpp.
//
// Ring wraparound is never silent: dropped() counts overwritten events and
// every exporter (Chrome JSON here, JSONL in events.cpp) embeds the count,
// so a reader can tell "empty history" from "truncated history".
//
// Concurrency: every slot field is an atomic, and each slot carries a
// sequence stamp (the event ordinal + 1) published with release ordering
// after the fields. snapshot() validates the stamp before and after copying
// a slot and skips slots caught mid-overwrite, so readers never observe a
// half-written event and TSan sees no data race. If the ring wraps all the
// way around during one snapshot copy, a slot can surface the newer event
// in place of the older — consistent with the overwrite semantics above.
//
// Event names must be string literals (or otherwise outlive the recorder):
// only the pointer is stored.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mcauth::obs {

struct TraceEvent {
    const char* name = nullptr;
    char phase = 'i';  // 'B' begin, 'E' end, 'i' instant
    std::uint64_t ts_ns = 0;
    std::uint32_t tid = 0;
    // Structured payload (obs/events.hpp); id 0 = plain span/instant.
    std::uint16_t id = 0;
    std::uint32_t block = 0;
    std::uint32_t index = 0;
    std::uint32_t actor = 0;
    double value = 0.0;
};

class TraceRecorder {
public:
    static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

    explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

    /// Record with a timestamp from obs::clock() and the calling thread's id.
    void record(const char* name, char phase) noexcept;
    /// Record with an explicit timestamp (ScopedTimer reads the clock once
    /// and shares the value between histogram and trace).
    void record_at(const char* name, char phase, std::uint64_t ts_ns) noexcept;
    /// Record a structured event (id != 0) with its payload fields; rendered
    /// as an instant with args in the Chrome view, decoded by events.hpp.
    void record_structured(const char* name, std::uint16_t id, std::uint32_t block,
                           std::uint32_t index, std::uint32_t actor, double value,
                           std::uint64_t ts_ns) noexcept;

    std::size_t capacity() const noexcept { return capacity_; }
    /// Events currently retained (<= capacity).
    std::size_t size() const noexcept;
    /// Events ever recorded.
    std::uint64_t recorded() const noexcept {
        return next_.load(std::memory_order_relaxed);
    }
    /// Events lost to ring wraparound.
    std::uint64_t dropped() const noexcept;

    /// Reset to empty. Safe against concurrent recording (no torn reads
    /// result), but events racing with the reset may land in either epoch.
    void clear() noexcept;

    /// Retained events, oldest first. Slots being overwritten while the
    /// snapshot runs are skipped rather than returned torn.
    std::vector<TraceEvent> snapshot() const;

    /// Chrome trace-event JSON ({"traceEvents": [...]}; ts in microseconds).
    /// The top-level "dropped_events" field counts ring-wrap losses so a
    /// truncated window is never mistaken for complete history.
    std::string to_json() const;
    /// Write to_json() to `path`; false on I/O failure.
    bool write_json(const std::string& path) const;

    /// The process-wide recorder ScopedTimer spans feed.
    static TraceRecorder& global();

private:
    // One ring slot. `seq` is 0 while never written, else the writing
    // event's ordinal + 1, stored with release ordering after the payload
    // fields — the reader's validity check and ordering anchor.
    struct Slot {
        std::atomic<std::uint64_t> seq{0};
        std::atomic<const char*> name{nullptr};
        std::atomic<std::uint64_t> ts_ns{0};
        std::atomic<std::uint32_t> tid{0};
        std::atomic<char> phase{'i'};
        std::atomic<std::uint16_t> id{0};
        std::atomic<std::uint32_t> block{0};
        std::atomic<std::uint32_t> index{0};
        std::atomic<std::uint32_t> actor{0};
        std::atomic<double> value{0.0};
    };

    void write_slot(const char* name, char phase, std::uint64_t ts_ns,
                    std::uint16_t id, std::uint32_t block, std::uint32_t index,
                    std::uint32_t actor, double value) noexcept;

    std::unique_ptr<Slot[]> ring_;  // atomics are immovable; unique_ptr array
    std::size_t capacity_;
    std::atomic<std::uint64_t> next_{0};
};

}  // namespace mcauth::obs

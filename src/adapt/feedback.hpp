// NACK-style feedback channel between receivers and the sender.
//
// Receivers periodically report their channel estimate upstream. The
// feedback channel is itself lossy (it usually shares fate with the
// forward channel), so the protocol is built to degrade gracefully:
//
//   * reports are idempotent state snapshots, not deltas — losing any
//     prefix of them costs freshness, never correctness;
//   * each report carries a per-receiver sequence number; the aggregator
//     keeps last-writer-wins per receiver, so reordered or duplicated
//     reports cannot roll the estimate backwards;
//   * staleness is tracked in sender blocks: a receiver whose newest
//     report is older than `freshness_blocks` stops contributing, and
//     when EVERY receiver goes stale (a loss storm eating the feedback
//     path) the aggregate decays toward a conservative prior instead of
//     trusting a sunny pre-storm estimate.
//
// Aggregation is worst-case (max loss rate over fresh receivers): the
// paper's q_min guarantee is per-receiver, so the design must cover the
// unluckiest listener, not the average one.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "adapt/estimator.hpp"

namespace mcauth::adapt {

/// Wire form of one receiver->sender report. Fixed-size little-endian
/// encoding (kWireSize bytes); doubles travel as IEEE-754 bit patterns.
struct FeedbackReport {
    std::uint32_t receiver_id = 0;
    std::uint32_t seq = 0;             // per-receiver, monotone
    std::uint32_t last_block = 0;      // newest sender block observed
    std::uint32_t window_packets = 0;  // transmissions covered by this report
    std::uint32_t window_losses = 0;
    double est_loss_rate = 0.0;        // receiver's EWMA estimate
    double est_mean_burst = 1.0;       // receiver's GE burst estimate
    std::uint32_t sig_loss_streak = 0; // consecutive blocks with no signature seen

    static constexpr std::size_t kWireSize = 6 * 4 + 2 * 8;

    /// Record a loss window that may exceed the u32 wire fields (a
    /// population-scale report covers receivers x packets x trials): both
    /// counts are halved together until packets fits, preserving the ratio
    /// — the only information the aggregator reads — with no wire change.
    void set_window(std::uint64_t packets, std::uint64_t losses) noexcept;

    std::vector<std::uint8_t> encode() const;
    static std::optional<FeedbackReport> decode(const std::uint8_t* data, std::size_t size);
};

/// Sender-side fusion of per-receiver reports into one channel picture.
class FeedbackAggregator {
public:
    struct Options {
        double conservative_prior = 0.3;  // assumed loss when starved of feedback
        std::uint32_t freshness_blocks = 8;
    };

    struct Aggregate {
        double loss_rate = 0.0;        // max over fresh receivers
        double mean_burst = 1.0;       // burst estimate of the lossiest fresh receiver
        std::uint32_t max_sig_streak = 0;
        std::size_t fresh_receivers = 0;
        bool starved = false;          // no fresh reports at all
    };

    FeedbackAggregator();
    explicit FeedbackAggregator(Options options);

    /// Fold in one report. Returns false (and ignores it) when a newer
    /// report from the same receiver has already been seen.
    bool on_report(const FeedbackReport& report);

    /// Fuse the current per-receiver state as of sender block
    /// `current_block`. When starved, loss_rate is the last aggregate
    /// decayed toward the conservative prior by `decay_weight` per call.
    Aggregate aggregate(std::uint32_t current_block, double decay_weight = 0.25);

    std::size_t known_receivers() const noexcept { return latest_.size(); }
    std::size_t stale_rejections() const noexcept { return stale_rejections_; }

private:
    Options options_;
    std::map<std::uint32_t, FeedbackReport> latest_;  // receiver_id -> newest
    double starved_rate_;                             // decaying estimate while starved
    std::size_t stale_rejections_ = 0;
};

}  // namespace mcauth::adapt

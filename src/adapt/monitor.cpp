#include "adapt/monitor.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace mcauth::adapt {

ReceiverMonitor::ReceiverMonitor(std::uint32_t receiver_id)
    : ReceiverMonitor(receiver_id, Options{}) {}

ReceiverMonitor::ReceiverMonitor(std::uint32_t receiver_id, Options options)
    : receiver_id_(receiver_id),
      options_(options),
      rate_(options.ewma_alpha, options.prior_loss) {
    MCAUTH_EXPECTS(options.report_every_blocks >= 1);
    MCAUTH_EXPECTS(options.ge_decay > 0.0 && options.ge_decay <= 1.0);
}

void ReceiverMonitor::on_block(std::uint32_t block_id, const std::vector<bool>& received,
                               bool signature_seen) {
    ge_.decay(options_.ge_decay);  // before observing: newest block at full weight
    std::size_t losses = 0;
    for (bool ok : received) {
        ge_.observe_packet(!ok);
        if (!ok) ++losses;
    }
    rate_.observe(received.size(), losses);
    sig_streak_ = signature_seen ? 0 : sig_streak_ + 1;
    last_block_ = block_id;
    window_packets_ += static_cast<std::uint32_t>(received.size());
    window_losses_ += static_cast<std::uint32_t>(losses);
    ++blocks_since_report_;
    MCAUTH_OBS_COUNT("adapt.monitor.blocks");
    MCAUTH_OBS_COUNT_N("adapt.monitor.losses", losses);
    // Actor ids in the event stream are 1-based (0 is the sender).
    MCAUTH_OBS_EVENT(kQHatUpdated, block_id, 0, receiver_id_ + 1,
                     rate_.loss_rate());
}

ChannelEstimate ReceiverMonitor::channel() const {
    ChannelEstimate est = ge_.estimate();
    if (!est.identifiable) {
        // Degenerate window: report the EWMA rate with independent losses
        // rather than the unconstrained moment fit.
        est.loss_rate = rate_.loss_rate();
        est.mean_burst = 1.0;
        est.p_gb = est.loss_rate;
        est.p_bg = 1.0;
    }
    return est;
}

std::optional<FeedbackReport> ReceiverMonitor::maybe_report() {
    if (blocks_since_report_ < options_.report_every_blocks) return std::nullopt;

    FeedbackReport report;
    report.receiver_id = receiver_id_;
    report.seq = ++next_seq_;
    report.last_block = last_block_;
    report.window_packets = window_packets_;
    report.window_losses = window_losses_;
    report.est_loss_rate = rate_.loss_rate();
    report.est_mean_burst = ge_.estimate().mean_burst;
    report.sig_loss_streak = sig_streak_;

    blocks_since_report_ = 0;
    window_packets_ = 0;
    window_losses_ = 0;
    MCAUTH_OBS_COUNT("adapt.monitor.reports");
    return report;
}

}  // namespace mcauth::adapt

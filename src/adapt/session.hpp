// End-to-end closed loop: one adaptive sender, N monitored receivers.
//
// AdaptiveSession wires the whole DESIGN.md §10 pipeline together:
//
//   StreamingAuthenticator --(lossy forward channel xN)--> StreamingVerifier
//            ^                                                  |
//            |                                           ReceiverMonitor
//   AdaptiveController <--(lossy NACK feedback channel)--  FeedbackReport
//
// run_window() drives `blocks` blocks through a given loss regime and
// returns measured per-window statistics; calling it repeatedly with
// different regimes simulates channel drift while ALL loop state
// (estimators, aggregator, hysteresis, sign_copies) persists across
// windows — that persistence is the whole point, it is what the
// abl_adaptive_loss bench measures against a static baseline.
//
// Receivers verify with the canonical spine topology even though the
// sender redesigns freely: hash-chain verification cascades through the
// HashRefs embedded in the packets themselves, and every §5 design
// transmits P_sign last, so the transmission-order -> vertex mapping the
// receiver derives is the same for every design. No out-of-band topology
// agreement, so redesign needs no receiver coordination.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "adapt/controller.hpp"
#include "adapt/monitor.hpp"
#include "auth/stream_auth.hpp"
#include "net/loss.hpp"
#include "obs/attrib.hpp"
#include "util/rng.hpp"

namespace mcauth::adapt {

struct SessionOptions {
    std::size_t receivers = 4;
    std::size_t block_size = 64;
    std::size_t payload_bytes = 64;
    std::size_t hash_bytes = 16;
    std::uint64_t seed = 1;
    double feedback_loss = 0.1;  // Bernoulli drop rate on the NACK path
    /// false = static baseline: the initial design is kept forever and no
    /// feedback is consumed (what a paper-§5 offline design would do).
    bool adaptive = true;
    /// Causal loss attribution (obs/attrib.hpp): every Nth (block,
    /// receiver) pattern is walked against the CURRENT sender design and
    /// each failed packet charged to a failure class + blame set; 0
    /// disables attribution entirely. Attribution consumes no randomness,
    /// so q_min and every other stat are identical at any setting.
    std::uint32_t attrib_sample_every = 1;
    AdaptiveOptions controller;
    ReceiverMonitor::Options monitor;
};

/// Measured over one run_window() call.
struct WindowStats {
    /// min over transmission indices of (authenticated / received), pooled
    /// across receivers and blocks — the measured counterpart of the
    /// paper's q_min = min_i P{verifiable | received}.
    double q_min = 1.0;
    double auth_fraction = 0.0;      // authenticated / received, pooled
    double edges_per_packet = 0.0;   // current design's edge density
    double overhead_bytes = 0.0;     // mean non-payload wire bytes per packet
    double estimated_loss = 0.0;     // controller's view (adaptive only)
    double true_loss = 0.0;          // measured over all transmissions
    std::size_t sign_copies = 0;
    std::uint64_t redesigns = 0;     // within this window
    std::uint64_t suppressed = 0;    // within this window
    std::uint64_t feedback_sent = 0;
    std::uint64_t feedback_delivered = 0;
    std::uint64_t feedback_stale = 0;
    std::size_t blocks = 0;
};

class AdaptiveSession {
public:
    /// The signer is borrowed and must outlive the session; its capacity
    /// must cover every block the session will ever cut.
    AdaptiveSession(SessionOptions options, Signer& signer);
    ~AdaptiveSession();

    /// Stream `blocks` blocks through `regime` (cloned per receiver, so
    /// each receiver sees an independent channel with the same law) and
    /// return the window's measured stats.
    WindowStats run_window(const LossModel& regime, std::size_t blocks);

    /// Change the NACK-path drop rate mid-session (1.0 = total feedback
    /// blackout — the storm scenario).
    void set_feedback_loss(double loss);

    const AdaptiveController& controller() const noexcept { return controller_; }
    std::uint32_t blocks_streamed() const noexcept { return next_block_; }

private:
    struct ReceiverState;

    /// (Re)build the blame attributor from the design the sender streams
    /// with right now; flushes any blame accumulated against the previous
    /// design into the metrics registry first.
    void rebuild_attributor(std::size_t n);

    SessionOptions options_;
    Rng rng_;
    AdaptiveController controller_;
    StreamingAuthenticator sender_;
    std::vector<std::unique_ptr<ReceiverState>> receivers_;
    std::uint32_t next_block_ = 0;
    double clock_ = 0.0;

    // Attribution state, rebuilt whenever the sender adopts a new design.
    std::unique_ptr<obs::BlameAttributor> attrib_;
    obs::BlameAttributor::Scratch attrib_scratch_;
    std::vector<VertexId> attrib_pos_to_vertex_;
    obs::BlameCounts attrib_counts_;
};

}  // namespace mcauth::adapt

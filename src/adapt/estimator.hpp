// Online channel estimation at the receiver (DESIGN.md §10).
//
// The §5 designers need a loss rate p (and, for bursty channels, a burst
// length) to size the dependence graph. In the paper these are design-time
// constants; the adaptive loop instead estimates them online from the
// pattern of received/missing packets and feeds them back to the sender.
//
// Two estimators, composed by ReceiverMonitor (monitor.hpp):
//
//   * EwmaLossEstimator — exponentially-weighted Bernoulli rate over
//     per-block (received, lost) counts. The EWMA discounts old regimes
//     geometrically, so a loss-rate step of any size is tracked within
//     ~1/alpha blocks. decay_toward() lets the *sender-side* aggregator
//     relax a stale estimate to a conservative prior when feedback stops
//     arriving (loss storms kill the feedback channel exactly when the
//     estimate matters most — see FeedbackAggregator).
//
//   * GilbertElliottEstimator — method-of-moments fit of a two-state
//     loss channel from the observed run-length statistics. With
//     loss_good = 0 and loss_bad = 1 (the classic GE special case used by
//     net/loss.hpp's MarkovLoss), every loss run is one visit to the bad
//     state, so
//         p_bg = runs / lost_packets      (bad -> good exit rate)
//         p_gb = runs / good_packets      (good -> bad entry rate)
//         stationary loss = p_gb / (p_gb + p_bg)
//         mean burst      = lost / runs = 1 / p_bg
//     These are exactly the inverse of GilbertElliottLoss::
//     from_rate_and_burst, so the controller can rebuild the fitted
//     channel for Monte-Carlo-scored redesign.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mcauth::adapt {

/// What a receiver believes about its channel — the payload of a feedback
/// report and the input to the sender's redesign decision.
struct ChannelEstimate {
    double loss_rate = 0.0;   // stationary P(packet lost)
    double mean_burst = 1.0;  // mean loss-run length (1 = independent losses)
    double p_gb = 0.0;        // fitted good->bad transition probability
    double p_bg = 1.0;        // fitted bad->good transition probability
    std::size_t samples = 0;  // packets observed so far
    // True only when both transition rates were actually constrained by the
    // data (some losses AND some good packets observed). Degenerate windows
    // — zero-loss, all-loss, statistics decayed away — leave it false, and
    // consumers (ReceiverMonitor::channel) should fall back to the EWMA
    // rate instead of trusting the pinned fit.
    bool identifiable = false;
};

class EwmaLossEstimator {
public:
    /// `alpha` is the per-observation blending weight (higher = faster
    /// tracking, noisier estimate). `prior` seeds the estimate before any
    /// data arrives.
    explicit EwmaLossEstimator(double alpha = 0.3, double prior = 0.1);

    /// Fold in one window of `packets` transmissions of which `losses`
    /// were lost. Windows with zero packets are ignored.
    void observe(std::size_t packets, std::size_t losses);

    /// Relax the estimate toward `prior` by blending weight `weight` in
    /// [0,1] — used when the estimate is going stale without fresh data.
    void decay_toward(double prior, double weight);

    double loss_rate() const noexcept { return rate_; }
    std::size_t samples() const noexcept { return samples_; }

private:
    double alpha_;
    double rate_;
    std::size_t samples_ = 0;
};

class GilbertElliottEstimator {
public:
    /// Feed one packet outcome in transmission order.
    void observe_packet(bool lost);

    /// Feed a whole block's outcomes (index order = transmission order for
    /// the data slots a receiver tracks).
    void observe(const bool* lost, std::size_t count);

    /// Exponential forgetting: scale all run statistics by `keep` in
    /// (0, 1]. Called once per block by ReceiverMonitor, this turns the
    /// cumulative fit into a sliding-window one (effective window
    /// ~ block_size / (1 - keep) packets) so a regime switch washes out in
    /// blocks, not in the whole session history.
    void decay(double keep);

    /// Method-of-moments fit. With no losses observed yet, reports the
    /// degenerate all-good channel (loss 0, burst 1). Fitted transition
    /// probabilities are clamped to (0, 1].
    ChannelEstimate estimate() const;

    double lost_packets() const noexcept { return lost_; }
    double loss_runs() const noexcept { return runs_; }

    void reset();

private:
    // double, not size_t: decay() scales these fractionally.
    double good_ = 0;
    double lost_ = 0;
    double runs_ = 0;
    bool in_run_ = false;
};

}  // namespace mcauth::adapt

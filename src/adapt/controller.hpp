// Sender-side control loop: feedback in, topology out (DESIGN.md §10).
//
// At every block boundary the controller fuses the latest receiver
// reports (feedback.hpp), decides whether the current dependence-graph
// design still covers the worst fresh receiver, and if not re-invokes the
// §5 greedy designer at the new operating point:
//
//   * i.i.d.-looking loss  -> design_greedy at the recurrence engine's
//     Bernoulli model (fast, analytic);
//   * bursty loss (mean burst >= burst_threshold) -> design_greedy_channel
//     scored by seeded Monte-Carlo under the FITTED Gilbert-Elliott
//     channel, because the recurrence's independence assumption
//     understates burst damage.
//
// Two dampers keep the loop from thrashing:
//
//   * hysteresis — redesign only when the estimated loss moved more than
//     `hysteresis` away from the rate the current design was built for;
//   * redesign budget — at most one redesign per
//     `min_blocks_between_redesigns` blocks (graph design costs real CPU,
//     and per-cut churn would defeat the topology cache).
//
// Robustness behaviours (each unit-tested in tests/test_adapt.cpp):
//
//   * feedback starvation -> the aggregate decays toward a conservative
//     prior, so a loss storm that eats the NACK path drives the design
//     toward MORE protection, not stale optimism;
//   * signature-loss streaks -> sign_copies escalates multiplicatively up
//     to max_sign_copies (a lost P_sign kills the whole block, Eq. 2's
//     q_i <= q_sign), and relaxes back when streaks clear;
//   * estimates are clamped to max_design_loss so a pathological report
//     cannot demand an infeasible design.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "adapt/feedback.hpp"
#include "core/dependence_graph.hpp"

namespace mcauth::design {
class Designer;
}

namespace mcauth::adapt {

struct AdaptiveOptions {
    double target_q_min = 0.9;      // the guarantee to hold per receiver
    double design_margin = 0.05;    // design for target + margin (noise headroom)
    double hysteresis = 0.03;       // redesign only if |est - designed_for| > this
    std::uint32_t min_blocks_between_redesigns = 4;
    std::uint32_t feedback_timeout_blocks = 8;
    double conservative_prior = 0.3;
    double prior_decay = 0.25;      // starvation decay weight per boundary
    std::size_t base_sign_copies = 3;
    std::size_t max_sign_copies = 8;
    std::uint32_t sig_streak_escalate = 2;  // escalate at this many sig-less blocks
    double max_design_loss = 0.6;   // clamp for the design operating point
    double burst_threshold = 1.75;  // mean burst above this -> GE-scored design
    std::size_t mc_trials = 512;    // Monte-Carlo budget per candidate rescore
    std::size_t max_edges_per_packet = 4;
    /// Design service the controller routes redesigns through. Null (the
    /// default) gives the controller a private Designer; a fleet shares
    /// one instance across controllers so groups whose channels land in
    /// the same quantized cell reuse one cached design
    /// (design/service.hpp).
    std::shared_ptr<design::Designer> designer;
};

class AdaptiveController {
public:
    AdaptiveController(AdaptiveOptions options, std::uint64_t seed);

    /// Fold in one (possibly delayed/duplicated) receiver report.
    /// Returns false when rejected as stale.
    bool on_feedback(const FeedbackReport& report);

    /// Run the decision loop before the sender cuts block `next_block`.
    /// Returns true when the topology changed (caller should push
    /// topology() into its StreamingAuthenticator).
    bool on_block_boundary(std::uint32_t next_block);

    /// Topology factory for StreamingAuthenticator::set_topology. The
    /// factory routes every invocation through the design service
    /// (design/service.hpp): the first request at an operating point pays
    /// for a build, every later cut is an LRU hit on the quantized key —
    /// the shared-cache replacement for the private per-size memo earlier
    /// revisions kept here. The captured operating point is frozen at
    /// hand-out time, so a factory keeps serving the design it was handed
    /// out for even after the controller redesigns or is destroyed.
    std::function<DependenceGraph(std::size_t)> topology() const;

    /// The design service this controller routes through (the shared one
    /// from AdaptiveOptions::designer, or its private instance).
    const std::shared_ptr<design::Designer>& designer() const noexcept {
        return designer_;
    }

    std::size_t sign_copies() const noexcept { return sign_copies_; }
    double designed_for_loss() const noexcept { return designed_for_loss_; }
    double estimated_loss() const noexcept { return last_estimate_.loss_rate; }
    bool last_design_bursty() const noexcept { return designed_bursty_; }
    std::uint64_t redesigns() const noexcept { return redesigns_; }
    std::uint64_t suppressed() const noexcept { return suppressed_; }

private:
    AdaptiveOptions options_;
    std::uint64_t seed_;
    FeedbackAggregator aggregator_;
    FeedbackAggregator::Aggregate last_estimate_;
    double designed_for_loss_;
    double designed_for_burst_ = 1.0;
    bool designed_bursty_ = false;
    std::size_t sign_copies_;
    std::uint32_t last_redesign_block_ = 0;
    bool ever_redesigned_ = false;
    std::uint64_t redesigns_ = 0;
    std::uint64_t suppressed_ = 0;
    // Boundary block of the current design epoch; stamped into every
    // DesignRequest so kDesignServed events pair with the
    // kRedesignTriggered that motivated them (the adaptive-loop suite's
    // bounded-lag rule).
    std::uint32_t design_epoch_block_ = 0;
    std::shared_ptr<design::Designer> designer_;
};

}  // namespace mcauth::adapt

#include "adapt/controller.hpp"

#include <algorithm>
#include <cmath>

#include "design/service.hpp"
#include "net/loss.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace mcauth::adapt {

AdaptiveController::AdaptiveController(AdaptiveOptions options, std::uint64_t seed)
    : options_(options),
      seed_(seed),
      aggregator_(FeedbackAggregator::Options{options.conservative_prior,
                                              options.feedback_timeout_blocks}),
      designed_for_loss_(options.conservative_prior),
      sign_copies_(options.base_sign_copies),
      designer_(options.designer ? options.designer
                                 : std::make_shared<design::Designer>()) {
    MCAUTH_EXPECTS(options.target_q_min > 0.0 && options.target_q_min <= 1.0);
    MCAUTH_EXPECTS(options.design_margin >= 0.0);
    MCAUTH_EXPECTS(options.hysteresis >= 0.0);
    MCAUTH_EXPECTS(options.base_sign_copies >= 1);
    MCAUTH_EXPECTS(options.max_sign_copies >= options.base_sign_copies);
    MCAUTH_EXPECTS(options.max_design_loss > 0.0 && options.max_design_loss < 1.0);
    MCAUTH_EXPECTS(options.max_edges_per_packet >= 1);
    MCAUTH_EXPECTS(options.mc_trials > 0);
    last_estimate_.loss_rate = options.conservative_prior;
}

bool AdaptiveController::on_feedback(const FeedbackReport& report) {
    const bool accepted = aggregator_.on_report(report);
    if (accepted)
        MCAUTH_OBS_EVENT(kFeedbackReceived, report.last_block, report.seq,
                         report.receiver_id + 1, report.est_loss_rate);
    return accepted;
}

bool AdaptiveController::on_block_boundary(std::uint32_t next_block) {
    const FeedbackAggregator::Aggregate agg =
        aggregator_.aggregate(next_block, options_.prior_decay);
    last_estimate_ = agg;
    MCAUTH_OBS_GAUGE_SET("adapt.ctrl.estimated_loss", agg.loss_rate);

    // Signature-loss streaks: a lost P_sign caps every q_i in the block
    // (Eq. 2), so replication is the one knob that matters. Escalate
    // multiplicatively while receivers report sig-less blocks, relax one
    // halving step once the streaks clear.
    if (agg.max_sig_streak >= options_.sig_streak_escalate) {
        const std::size_t escalated = std::min(options_.max_sign_copies, sign_copies_ * 2);
        if (escalated != sign_copies_) {
            sign_copies_ = escalated;
            MCAUTH_OBS_COUNT("adapt.ctrl.sign_copies_escalated");
        }
    } else if (agg.max_sig_streak == 0 && sign_copies_ > options_.base_sign_copies) {
        sign_copies_ = std::max(options_.base_sign_copies, sign_copies_ / 2);
    }
    MCAUTH_OBS_GAUGE_SET("adapt.ctrl.sign_copies", sign_copies_);

    const double clamped = std::min(agg.loss_rate, options_.max_design_loss);
    // Dead band on the burstiness bit too: a regime change bypasses the
    // loss-rate hysteresis below, so a burst estimate hovering near the
    // threshold would otherwise flap the flag and thrash redesigns. Enter
    // bursty mode at the threshold, leave it only 25% below.
    const bool bursty =
        !agg.starved && agg.mean_burst >= (designed_bursty_
                                               ? options_.burst_threshold / 1.25
                                               : options_.burst_threshold);

    // Hysteresis: a small drift is absorbed by the design margin; only a
    // move past the dead band (or a burstiness regime change) justifies
    // paying for a redesign.
    const double delta = std::abs(clamped - designed_for_loss_);
    const bool wants_redesign =
        !ever_redesigned_ || delta > options_.hysteresis || bursty != designed_bursty_;
    if (!wants_redesign) return false;

    // Redesign budget: never redesign more often than once per
    // min_blocks_between_redesigns blocks.
    if (ever_redesigned_ &&
        next_block - last_redesign_block_ < options_.min_blocks_between_redesigns) {
        ++suppressed_;
        MCAUTH_OBS_COUNT("adapt.ctrl.redesign_suppressed");
        return false;
    }

    const obs::RedesignReason reason =
        !ever_redesigned_ ? obs::RedesignReason::kInitial
        : bursty != designed_bursty_ ? obs::RedesignReason::kBurstRegime
                                     : obs::RedesignReason::kLossDrift;
    designed_for_loss_ = clamped;
    designed_for_burst_ = bursty ? agg.mean_burst : 1.0;
    designed_bursty_ = bursty;
    last_redesign_block_ = next_block;
    design_epoch_block_ = next_block;
    ever_redesigned_ = true;
    ++redesigns_;
    MCAUTH_OBS_COUNT("adapt.ctrl.redesigns");
    MCAUTH_OBS_GAUGE_SET("adapt.ctrl.designed_for_loss", designed_for_loss_);
    MCAUTH_OBS_EVENT(kRedesignTriggered, next_block,
                     static_cast<std::uint32_t>(reason), 0, designed_for_loss_);
    return true;
}

std::function<DependenceGraph(std::size_t)> AdaptiveController::topology() const {
    // Everything is captured by value (the service by shared_ptr), so the
    // factory keeps working — with the operating point it was handed out
    // for — even after the controller redesigns or is destroyed: the
    // service caches by quantized operating point, so an old factory's
    // requests keep hitting the old design's cell. The seed is left 0 so
    // the service derives it from the quantized key, which is what lets
    // every controller in a fleet share one cached design per cell.
    design::DesignRequest req;
    req.goal.p = designed_for_loss_;
    req.goal.target_q_min =
        std::min(1.0, options_.target_q_min + options_.design_margin);
    req.method = designed_bursty_ ? design::DesignMethod::kGreedyChannel
                                  : design::DesignMethod::kGreedy;
    req.mean_burst = designed_bursty_ ? designed_for_burst_ : 1.0;
    req.mc_trials = options_.mc_trials;
    req.block = design_epoch_block_;
    const std::size_t edges_per_packet = options_.max_edges_per_packet;
    auto designer = designer_;

    return [=](std::size_t n) -> DependenceGraph {
        design::DesignRequest sized = req;
        sized.goal.n = n;
        sized.greedy.max_edges = edges_per_packet * n;
        MCAUTH_OBS_COUNT("adapt.ctrl.designs_requested");
        return designer->design(sized).graph;
    };
}

}  // namespace mcauth::adapt

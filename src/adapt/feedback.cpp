#include "adapt/feedback.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace mcauth::adapt {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

double get_f64(const std::uint8_t* p) {
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

}  // namespace

void FeedbackReport::set_window(std::uint64_t packets,
                                std::uint64_t losses) noexcept {
    MCAUTH_EXPECTS(losses <= packets);
    while (packets > std::numeric_limits<std::uint32_t>::max()) {
        packets >>= 1;
        losses >>= 1;
    }
    window_packets = static_cast<std::uint32_t>(packets);
    window_losses = static_cast<std::uint32_t>(losses);
}

std::vector<std::uint8_t> FeedbackReport::encode() const {
    std::vector<std::uint8_t> out;
    out.reserve(kWireSize);
    put_u32(out, receiver_id);
    put_u32(out, seq);
    put_u32(out, last_block);
    put_u32(out, window_packets);
    put_u32(out, window_losses);
    put_f64(out, est_loss_rate);
    put_f64(out, est_mean_burst);
    put_u32(out, sig_loss_streak);
    MCAUTH_ENSURES(out.size() == kWireSize);
    return out;
}

std::optional<FeedbackReport> FeedbackReport::decode(const std::uint8_t* data,
                                                     std::size_t size) {
    if (data == nullptr || size != kWireSize) return std::nullopt;
    FeedbackReport r;
    r.receiver_id = get_u32(data);
    r.seq = get_u32(data + 4);
    r.last_block = get_u32(data + 8);
    r.window_packets = get_u32(data + 12);
    r.window_losses = get_u32(data + 16);
    r.est_loss_rate = get_f64(data + 20);
    r.est_mean_burst = get_f64(data + 28);
    r.sig_loss_streak = get_u32(data + 36);
    if (!(r.est_loss_rate >= 0.0 && r.est_loss_rate <= 1.0)) return std::nullopt;
    if (!(r.est_mean_burst >= 1.0)) return std::nullopt;
    if (r.window_losses > r.window_packets) return std::nullopt;
    return r;
}

FeedbackAggregator::FeedbackAggregator() : FeedbackAggregator(Options{}) {}

FeedbackAggregator::FeedbackAggregator(Options options)
    : options_(options), starved_rate_(options.conservative_prior) {
    MCAUTH_EXPECTS(options.conservative_prior >= 0.0 && options.conservative_prior <= 1.0);
    MCAUTH_EXPECTS(options.freshness_blocks >= 1);
}

bool FeedbackAggregator::on_report(const FeedbackReport& report) {
    auto it = latest_.find(report.receiver_id);
    if (it != latest_.end() && report.seq <= it->second.seq) {
        ++stale_rejections_;
        MCAUTH_OBS_COUNT("adapt.feedback.stale_rejected");
        return false;
    }
    latest_[report.receiver_id] = report;
    MCAUTH_OBS_COUNT("adapt.feedback.accepted");
    return true;
}

FeedbackAggregator::Aggregate FeedbackAggregator::aggregate(std::uint32_t current_block,
                                                            double decay_weight) {
    Aggregate agg;
    for (const auto& [id, report] : latest_) {
        const std::uint32_t age =
            current_block >= report.last_block ? current_block - report.last_block : 0;
        if (age > options_.freshness_blocks) continue;
        ++agg.fresh_receivers;
        if (report.est_loss_rate >= agg.loss_rate) {
            agg.loss_rate = report.est_loss_rate;
            agg.mean_burst = report.est_mean_burst;
        }
        agg.max_sig_streak = std::max(agg.max_sig_streak, report.sig_loss_streak);
    }

    if (agg.fresh_receivers == 0) {
        // Feedback blackout: every report is stale (or none ever arrived).
        // Trusting the last estimate would under-protect exactly when the
        // channel turned hostile, so decay toward the conservative prior.
        agg.starved = true;
        starved_rate_ += decay_weight * (options_.conservative_prior - starved_rate_);
        agg.loss_rate = starved_rate_;
        agg.mean_burst = 1.0;
        MCAUTH_OBS_COUNT("adapt.feedback.starved");
    } else {
        starved_rate_ = agg.loss_rate;
    }
    MCAUTH_OBS_GAUGE_SET("adapt.feedback.fresh_receivers",
                         static_cast<std::int64_t>(agg.fresh_receivers));
    return agg;
}

}  // namespace mcauth::adapt

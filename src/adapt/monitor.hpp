// Receiver-side observation point of the adaptive loop.
//
// A ReceiverMonitor sits next to a StreamingVerifier: after each block
// closes, the session tells it which data slots arrived and whether any
// signature copy was seen. It drives both estimators (estimator.hpp) and
// periodically emits a FeedbackReport for the (lossy) feedback channel.
//
// The monitor never needs the dependence graph — it observes raw arrival
// bitmaps, which is exactly the information a real receiver has regardless
// of which topology the sender is currently using. That independence is
// what lets the sender redesign per block without coordinating receivers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "adapt/estimator.hpp"
#include "adapt/feedback.hpp"

namespace mcauth::adapt {

class ReceiverMonitor {
public:
    struct Options {
        double ewma_alpha = 0.3;           // EWMA tracking speed
        double prior_loss = 0.1;           // estimate before any data
        // Per-block forgetting factor for the burst-structure fit: the GE
        // estimator's effective window is ~ block_size / (1 - ge_decay)
        // packets, so a regime switch stops dominating the burst estimate
        // within ~10 blocks instead of lingering for the whole session.
        double ge_decay = 0.9;
        std::uint32_t report_every_blocks = 2;
    };

    explicit ReceiverMonitor(std::uint32_t receiver_id);
    ReceiverMonitor(std::uint32_t receiver_id, Options options);

    /// Record one closed block: `received[i]` for each of the block's data
    /// slots (transmission order), plus whether any signature copy landed.
    void on_block(std::uint32_t block_id, const std::vector<bool>& received,
                  bool signature_seen);

    /// Non-empty every `report_every_blocks` closed blocks. The report
    /// snapshots current state (idempotent — safe to lose or duplicate).
    std::optional<FeedbackReport> maybe_report();

    const EwmaLossEstimator& rate() const noexcept { return rate_; }
    /// Best current channel picture: the GE moment fit when it is
    /// identifiable, otherwise the EWMA rate with independent losses (the
    /// fit is unconstrained on zero-loss / all-loss / decayed-out windows).
    ChannelEstimate channel() const;
    std::uint32_t sig_loss_streak() const noexcept { return sig_streak_; }

private:
    std::uint32_t receiver_id_;
    Options options_;
    EwmaLossEstimator rate_;
    GilbertElliottEstimator ge_;
    std::uint32_t next_seq_ = 0;
    std::uint32_t last_block_ = 0;
    std::uint32_t blocks_since_report_ = 0;
    std::uint32_t window_packets_ = 0;
    std::uint32_t window_losses_ = 0;
    std::uint32_t sig_streak_ = 0;
};

}  // namespace mcauth::adapt

#include "adapt/estimator.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mcauth::adapt {

// ---------------------------------------------------- EwmaLossEstimator

EwmaLossEstimator::EwmaLossEstimator(double alpha, double prior)
    : alpha_(alpha), rate_(prior) {
    MCAUTH_EXPECTS(alpha > 0.0 && alpha <= 1.0);
    MCAUTH_EXPECTS(prior >= 0.0 && prior <= 1.0);
}

void EwmaLossEstimator::observe(std::size_t packets, std::size_t losses) {
    MCAUTH_EXPECTS(losses <= packets);
    if (packets == 0) return;
    const double window_rate = static_cast<double>(losses) / static_cast<double>(packets);
    rate_ += alpha_ * (window_rate - rate_);
    samples_ += packets;
}

void EwmaLossEstimator::decay_toward(double prior, double weight) {
    MCAUTH_EXPECTS(prior >= 0.0 && prior <= 1.0);
    MCAUTH_EXPECTS(weight >= 0.0 && weight <= 1.0);
    rate_ += weight * (prior - rate_);
}

// ----------------------------------------------- GilbertElliottEstimator

void GilbertElliottEstimator::observe_packet(bool lost) {
    if (lost) {
        ++lost_;
        if (!in_run_) {
            ++runs_;
            in_run_ = true;
        }
    } else {
        ++good_;
        in_run_ = false;
    }
}

void GilbertElliottEstimator::observe(const bool* lost, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) observe_packet(lost[i]);
}

void GilbertElliottEstimator::decay(double keep) {
    MCAUTH_EXPECTS(keep > 0.0 && keep <= 1.0);
    good_ *= keep;
    lost_ *= keep;
    runs_ *= keep;
    // Flush decayed-out statistics to a clean zero: a session that goes
    // loss-free for thousands of blocks would otherwise drive these into
    // denormal territory, where the ratios in estimate() turn into noise.
    constexpr double kFloor = 1e-12;
    if (good_ < kFloor) good_ = 0.0;
    if (lost_ < kFloor) lost_ = 0.0;
    if (runs_ < kFloor) runs_ = 0.0;
}

ChannelEstimate GilbertElliottEstimator::estimate() const {
    ChannelEstimate est;
    est.samples = static_cast<std::size_t>(good_ + lost_);
    if (runs_ <= 0.0 || lost_ <= 0.0) return est;  // all-good channel so far

    const auto clamp01 = [](double v) { return std::clamp(v, 1e-9, 1.0); };
    est.p_bg = clamp01(runs_ / lost_);
    // All-lost stream: no good packets to estimate entry rate from; pin the
    // channel at its observed extreme rather than divide by zero. The fit
    // is flagged unidentifiable so consumers know the pin is a guess.
    est.p_gb = good_ <= 0.0 ? 1.0 : clamp01(runs_ / good_);
    est.loss_rate = est.p_gb / (est.p_gb + est.p_bg);
    est.mean_burst = std::max(1.0, lost_ / runs_);
    est.identifiable = good_ > 0.0;
    return est;
}

void GilbertElliottEstimator::reset() {
    good_ = 0;
    lost_ = 0;
    runs_ = 0;
    in_run_ = false;
}

}  // namespace mcauth::adapt

#include "adapt/session.hpp"

#include <algorithm>

#include "core/topologies.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace mcauth::adapt {

namespace {

constexpr double kTransmitSlot = 0.01;  // nominal sender clock step per packet

HashChainConfig sender_config(const SessionOptions& options,
                              const AdaptiveController& controller) {
    HashChainConfig config;
    config.topology = controller.topology();
    config.block_size = options.block_size;
    config.hash_bytes = options.hash_bytes;
    config.name = "adaptive-tx";
    return config;
}

HashChainConfig receiver_config(const SessionOptions& options) {
    // Canonical spine: only the (shared, signature-last) send_pos mapping
    // matters for verification — the HashRefs in the packets carry the
    // actual edge structure of whatever design the sender currently uses.
    HashChainConfig config;
    config.topology = [](std::size_t n) { return make_offset_scheme(n, {1}); };
    config.block_size = options.block_size;
    config.hash_bytes = options.hash_bytes;
    config.name = "adaptive-rx";
    return config;
}

}  // namespace

struct AdaptiveSession::ReceiverState {
    ReceiverState(std::uint32_t id, const SessionOptions& options, Signer& signer)
        : verifier(receiver_config(options), signer.make_verifier()),
          monitor(id, options.monitor) {}

    std::unique_ptr<LossModel> channel;  // cloned from the regime per window
    StreamingVerifier verifier;
    ReceiverMonitor monitor;
};

AdaptiveSession::AdaptiveSession(SessionOptions options, Signer& signer)
    : options_(options),
      rng_(options.seed),
      controller_(options.controller, options.seed ^ 0xada9d7ULL),
      sender_(sender_config(options, controller_),
              signer,
              StreamingOptions{options.block_size, 2, 1e9}) {
    MCAUTH_EXPECTS(options.receivers >= 1);
    MCAUTH_EXPECTS(options.block_size >= 2);
    MCAUTH_EXPECTS(options.feedback_loss >= 0.0 && options.feedback_loss <= 1.0);
    for (std::size_t r = 0; r < options_.receivers; ++r)
        receivers_.push_back(
            std::make_unique<ReceiverState>(static_cast<std::uint32_t>(r), options_, signer));
}

AdaptiveSession::~AdaptiveSession() = default;

void AdaptiveSession::set_feedback_loss(double loss) {
    MCAUTH_EXPECTS(loss >= 0.0 && loss <= 1.0);
    options_.feedback_loss = loss;
}

void AdaptiveSession::rebuild_attributor(std::size_t n) {
    if (attrib_) {
        obs::flush_blame_counters(*attrib_, attrib_counts_, "attrib");
        attrib_counts_ = {};
    }
    // The attributor must mirror the design whose HashRefs are on the wire,
    // i.e. the sender's CURRENT topology — rebuilt exactly when the sender
    // adopts a new one, not when the controller merely proposes one.
    const DependenceGraph& dg = controller_.topology()(n);
    attrib_ = std::make_unique<obs::BlameAttributor>(dg.graph(), DependenceGraph::root());
    attrib_scratch_ = attrib_->make_scratch();
    attrib_pos_to_vertex_.resize(n);
    for (VertexId v = 0; v < static_cast<VertexId>(n); ++v)
        attrib_pos_to_vertex_[dg.send_pos(v)] = v;
}

WindowStats AdaptiveSession::run_window(const LossModel& regime, std::size_t blocks) {
    MCAUTH_EXPECTS(blocks >= 1);
    WindowStats window;
    window.blocks = blocks;
#if MCAUTH_OBS_ENABLED
    const bool attrib_on = options_.attrib_sample_every > 0 && obs::enabled();
#else
    const bool attrib_on = false;
#endif
    const std::uint64_t redesigns_before = controller_.redesigns();
    const std::uint64_t suppressed_before = controller_.suppressed();

    for (auto& r : receivers_) r->channel = regime.clone();

    const std::size_t n = options_.block_size;
    std::vector<std::uint64_t> received_count(n, 0);
    std::vector<std::uint64_t> auth_count(n, 0);
    double overhead_sum = 0.0;
    std::uint64_t sent_transmissions = 0;
    std::uint64_t channel_transmissions = 0;
    std::uint64_t channel_losses = 0;

    for (std::size_t b = 0; b < blocks; ++b) {
        bool design_changed = false;
        if (options_.adaptive && controller_.on_block_boundary(next_block_)) {
            sender_.set_topology(controller_.topology());
            design_changed = true;
        }
        if (attrib_on && (!attrib_ || design_changed)) rebuild_attributor(n);
        const std::size_t sign_copies = options_.adaptive
                                            ? controller_.sign_copies()
                                            : options_.controller.base_sign_copies;

        // Cut one full block through the streaming sender.
        std::vector<AuthPacket> packets;
        for (std::size_t i = 0; i < n; ++i) {
            auto cut = sender_.push(rng_.bytes(options_.payload_bytes), clock_);
            clock_ += kTransmitSlot;
            if (!cut.empty()) packets = std::move(cut);
        }
        MCAUTH_ENSURES(packets.size() == n);
        const std::uint32_t block_id = packets.front().block_id;

        // Transmission schedule: every packet once, P_sign replicated with
        // the extra copies spread evenly through the block — back-to-back
        // replicas share fate under burst loss, which defeats the point of
        // replicating. The canonical copy still goes last (send_pos
        // contract shared by every §5 design).
        const AuthPacket& sig = packets.back();
        MCAUTH_ENSURES(sig.kind == PacketKind::kSignature);
        const std::size_t extra = sign_copies - 1;
        std::vector<const AuthPacket*> schedule;
        schedule.reserve(n + extra);
        const std::size_t stride = std::max<std::size_t>(1, (n - 1) / (extra + 1));
        std::size_t inserted = 0;
        for (std::size_t i = 0; i + 1 < n; ++i) {
            schedule.push_back(&packets[i]);
            if (inserted < extra && (i + 1) % stride == 0) {
                schedule.push_back(&sig);
                ++inserted;
            }
        }
        schedule.push_back(&sig);
        for (const AuthPacket* pkt : schedule) {
            overhead_sum +=
                static_cast<double>(pkt->wire_size()) -
                static_cast<double>(options_.payload_bytes);
            ++sent_transmissions;
            MCAUTH_OBS_EVENT(kPacketEmitted, pkt->block_id, pkt->index, 0,
                             pkt->kind == PacketKind::kSignature ? 1.0 : 0.0);
        }

        std::uint32_t receiver_index = 0;
        for (auto& r : receivers_) {
            const std::uint32_t actor = ++receiver_index;  // 1-based; 0 = sender
            std::vector<bool> arrived(schedule.size(), false);
            bool signature_seen = false;
            std::vector<VerifyEvent> events;
            for (std::size_t t = 0; t < schedule.size(); ++t) {
                const bool lost = r->channel->lose_next(rng_);
                ++channel_transmissions;
                if (lost) {
                    ++channel_losses;
                    continue;
                }
                arrived[t] = true;
                const AuthPacket& pkt = *schedule[t];
                if (pkt.kind == PacketKind::kSignature) signature_seen = true;
                MCAUTH_OBS_EVENT(kPacketReceived, pkt.block_id, pkt.index, actor,
                                 pkt.kind == PacketKind::kSignature ? 1.0 : 0.0);
                auto resolved = r->verifier.on_packet(pkt);
                events.insert(events.end(), resolved.begin(), resolved.end());
            }
            auto tail = r->verifier.finish_block(block_id);
            events.insert(events.end(), tail.begin(), tail.end());
            if (!signature_seen)
                MCAUTH_OBS_EVENT(kSignatureLost, block_id, 0, actor, 0.0);
            for (const VerifyEvent& ev : events) {
                switch (ev.status) {
                    case VerifyStatus::kAuthenticated:
                        MCAUTH_OBS_EVENT(kPacketVerified, ev.block_id, ev.index,
                                         actor, 0.0);
                        break;
                    case VerifyStatus::kRejected:
                        MCAUTH_OBS_EVENT(kPacketRejected, ev.block_id, ev.index,
                                         actor, 0.0);
                        break;
                    case VerifyStatus::kUnverifiable:
                        MCAUTH_OBS_EVENT(kPacketUnverifiable, ev.block_id,
                                         ev.index, actor, 0.0);
                        break;
                }
                if (ev.block_id != block_id || ev.index >= n) continue;
                ++received_count[ev.index];
                if (ev.status == VerifyStatus::kAuthenticated) ++auth_count[ev.index];
            }

            if (attrib_on && attrib_) {
                const bool sampled =
                    (static_cast<std::uint64_t>(block_id) * receivers_.size() +
                     (actor - 1)) %
                        options_.attrib_sample_every ==
                    0;
                if (!sampled) {
                    for (const VerifyEvent& ev : events)
                        if (ev.status == VerifyStatus::kUnverifiable)
                            ++attrib_counts_.sampled_out;
                } else {
                    // Realized loss pattern over DESIGN vertices: a schedule
                    // slot's packet index is its send position, and the sig
                    // replicas all collapse onto the root vertex.
                    obs::BlameAttributor::Scratch& s = attrib_scratch_;
                    std::fill(s.received.begin(), s.received.end(), 0);
                    for (std::size_t t = 0; t < schedule.size(); ++t)
                        if (arrived[t])
                            s.received[attrib_pos_to_vertex_[schedule[t]->index]] = 1;
                    attrib_->begin_pattern(s);
                    // Packets that never arrived have no VerifyEvent (the
                    // receiver only rules on buffered packets) — charge them
                    // here so every failed packet lands in exactly one class.
                    for (VertexId v = 0; v < static_cast<VertexId>(n); ++v) {
                        if (v == DependenceGraph::root() || s.received[v]) continue;
                        attrib_->attribute(v, signature_seen, s, attrib_counts_);
                    }
                    for (const VerifyEvent& ev : events) {
                        if (ev.block_id != block_id || ev.index >= n) continue;
                        if (ev.status == VerifyStatus::kAuthenticated) continue;
                        const VertexId v = attrib_pos_to_vertex_[ev.index];
                        const obs::FailureClass cls =
                            attrib_->attribute(v, signature_seen, s, attrib_counts_);
                        if (ev.status == VerifyStatus::kUnverifiable &&
                            cls != obs::FailureClass::kNone)
                            MCAUTH_OBS_EVENT(kBlameAttributed, ev.block_id, ev.index,
                                             actor, static_cast<double>(cls));
                    }
                }
            }

            r->monitor.on_block(block_id, arrived, signature_seen);
            auto report = r->monitor.maybe_report();
            if (report && options_.adaptive) {
                ++window.feedback_sent;
                if (rng_.bernoulli(options_.feedback_loss)) continue;  // NACK lost
                ++window.feedback_delivered;
                const auto wire = report->encode();
                const auto decoded = FeedbackReport::decode(wire.data(), wire.size());
                MCAUTH_ENSURES(decoded.has_value());
                if (!controller_.on_feedback(*decoded)) ++window.feedback_stale;
            }
        }
        ++next_block_;
        MCAUTH_OBS_COUNT("adapt.session.blocks");
    }

    std::uint64_t received_total = 0;
    std::uint64_t auth_total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        received_total += received_count[i];
        auth_total += auth_count[i];
        if (received_count[i] == 0) continue;
        const double q =
            static_cast<double>(auth_count[i]) / static_cast<double>(received_count[i]);
        window.q_min = std::min(window.q_min, q);
    }
    window.auth_fraction = received_total == 0
                               ? 0.0
                               : static_cast<double>(auth_total) /
                                     static_cast<double>(received_total);
    window.true_loss = channel_transmissions == 0
                           ? 0.0
                           : static_cast<double>(channel_losses) /
                                 static_cast<double>(channel_transmissions);
    window.overhead_bytes =
        sent_transmissions == 0 ? 0.0 : overhead_sum / static_cast<double>(sent_transmissions);
    window.estimated_loss = options_.adaptive ? controller_.estimated_loss() : 0.0;
    window.sign_copies = options_.adaptive ? controller_.sign_copies()
                                           : options_.controller.base_sign_copies;
    window.redesigns = controller_.redesigns() - redesigns_before;
    window.suppressed = controller_.suppressed() - suppressed_before;
    // The memoized factory makes this cheap: the design for size n is
    // already cached unless a redesign just happened on the last boundary.
    window.edges_per_packet =
        static_cast<double>(controller_.topology()(n).graph().edge_count()) /
        static_cast<double>(n);
    if (attrib_on && attrib_) {
        obs::flush_blame_counters(*attrib_, attrib_counts_, "attrib");
        attrib_counts_ = {};
    }
    MCAUTH_OBS_GAUGE_SET("adapt.session.q_min", window.q_min);
    return window;
}

}  // namespace mcauth::adapt

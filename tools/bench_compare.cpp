// bench_compare — the noise-aware benchmark regression gate (DESIGN.md §9).
//
//   bench_compare BASELINE.json CURRENT.json [--rel-tol=0.05]
//                 [--report-only] [--strict-host]
//
// Diffs two manifest-bearing BENCH_*.json files (e.g. the committed
// bench_out/BENCH_bitslice_mc.json baseline vs a fresh run) and prints a
// markdown verdict table.
//
// Exit codes:
//   0  comparable, no regression (or --report-only suppressed the gate)
//   1  at least one entry regressed beyond its noise-aware threshold, an
//      entry present in the baseline is missing from the current run, or
//      the current manifest carries expectation-suite violations (the
//      conformance gate — never suppressed by --report-only)
//   2  usage error, unreadable/pre-manifest file, or incompatible
//      manifests (different bench/seed/trials; any mismatch under
//      --strict-host) — never suppressed, even by --report-only
//
// --report-only is for shared CI runners whose timing is untrustworthy:
// the table still prints and schema/manifest problems still hard-fail, but
// a timing regression alone does not. Conformance violations are behavior,
// not timing, so they hard-fail everywhere.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/bench_compare.hpp"
#include "util/cli.hpp"

namespace {

int usage(const char* argv0, bool requested) {
    std::fprintf(requested ? stdout : stderr,
                 "usage: %s BASELINE.json CURRENT.json [--rel-tol=0.05] "
                 "[--report-only] [--strict-host]\n",
                 argv0);
    return requested ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace mcauth;

    std::vector<std::string> paths;
    std::vector<const char*> flag_argv = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (argv[i][0] == '-')
            flag_argv.push_back(argv[i]);
        else
            paths.emplace_back(argv[i]);
    }
    const CliArgs args(static_cast<int>(flag_argv.size()), flag_argv.data());
    static constexpr std::string_view kKnown[] = {"rel-tol", "report-only",
                                                  "strict-host", "help"};
    const auto unknown = args.unknown_keys(kKnown);
    if (!unknown.empty()) {
        for (const std::string& key : unknown)
            std::fprintf(stderr, "bench_compare: unknown option --%s\n", key.c_str());
        return usage(argv[0], false);
    }
    if (args.has("help")) return usage(argv[0], true);
    if (paths.size() != 2) return usage(argv[0], false);

    obs::CompareOptions opts;
    opts.rel_tol = args.get_double("rel-tol", opts.rel_tol);
    opts.strict_host = args.get_bool("strict-host", false);
    const bool report_only = args.get_bool("report-only", false);

    obs::BenchFile base, cur;
    std::string error;
    if (!obs::load_bench_file_path(paths[0], base, error)) {
        std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
        return 2;
    }
    if (!obs::load_bench_file_path(paths[1], cur, error)) {
        std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
        return 2;
    }

    const obs::CompareReport report = obs::compare_bench_files(base, cur, opts);
    std::printf("%s", report.render_markdown(base, cur).c_str());

    if (report.incompatible) return 2;
    // Conformance is correctness, not timing: --report-only (meant for noisy
    // shared runners) does not suppress it.
    if (report.has_conformance_failure()) return 1;
    if (report.has_regression()) {
        if (report_only) {
            std::printf("\nregression detected, exit suppressed by --report-only\n");
            return 0;
        }
        return 1;
    }
    return 0;
}

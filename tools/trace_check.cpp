// trace_check — offline scenario-conformance checker (DESIGN.md §11).
//
//   trace_check EVENTS.jsonl --suite=NAME
//   trace_check EVENTS.jsonl --summary [--suite=NAME]
//   trace_check --list-suites
//
// Replays a structured-event JSONL export (the --events-out format of the
// benches and examples) through the named expectation suite and prints the
// same verdict the online checker would have produced. The meta header's
// dropped_events count triggers partial-trace mode: anchor-dependent rules
// are suppressed for each actor's first observed block, since a wrapped
// ring keeps only a contiguous suffix of the stream.
//
// --summary prints what the trace CONTAINED — per-event-type counts, the
// covered block range, dropped-event and skipped-line totals — so CI logs
// document a trace even when every suite passes. With no --suite, summary
// mode exits 0 on any readable trace.
//
// Exit codes:
//   0  every rule held (PASS), or --summary without a suite
//   1  at least one violation (FAIL; details on stdout)
//   2  usage error, unreadable file, malformed JSONL, unknown suite
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/expect.hpp"
#include "util/cli.hpp"

namespace {

int usage(const char* argv0, bool requested) {
    std::fprintf(requested ? stdout : stderr,
                 "usage: %s EVENTS.jsonl --suite=NAME\n"
                 "       %s EVENTS.jsonl --summary [--suite=NAME]\n"
                 "       %s --list-suites\n",
                 argv0, argv0, argv0);
    return requested ? 0 : 2;
}

void print_summary(const std::vector<mcauth::obs::Event>& events,
                   const mcauth::obs::JsonlStats& stats) {
    using mcauth::obs::Event;
    std::map<std::string, std::uint64_t> by_name;
    std::uint32_t block_lo = 0;
    std::uint32_t block_hi = 0;
    bool any = false;
    for (const Event& ev : events) {
        ++by_name[mcauth::obs::event_name(ev.id)];
        if (!any) {
            block_lo = block_hi = ev.block;
            any = true;
        } else {
            block_lo = std::min(block_lo, ev.block);
            block_hi = std::max(block_hi, ev.block);
        }
    }
    std::printf("trace summary: %zu events", events.size());
    if (any)
        std::printf(", blocks %u..%u", block_lo, block_hi);
    std::printf(", %llu dropped, %llu skipped lines\n",
                static_cast<unsigned long long>(stats.dropped_events),
                static_cast<unsigned long long>(stats.skipped_lines));
    for (const auto& [name, count] : by_name)
        std::printf("  %-18s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(count));
}

}  // namespace

int main(int argc, char** argv) {
    using namespace mcauth;

    std::vector<std::string> paths;
    std::vector<const char*> flag_argv = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (argv[i][0] == '-')
            flag_argv.push_back(argv[i]);
        else
            paths.emplace_back(argv[i]);
    }
    const CliArgs args(static_cast<int>(flag_argv.size()), flag_argv.data());
    static constexpr std::string_view kKnown[] = {"suite", "list-suites",
                                                  "summary", "help"};
    const auto unknown = args.unknown_keys(kKnown);
    if (!unknown.empty()) {
        for (const std::string& key : unknown)
            std::fprintf(stderr, "trace_check: unknown option --%s\n", key.c_str());
        return usage(argv[0], false);
    }
    if (args.has("help")) return usage(argv[0], true);

    if (args.get_bool("list-suites", false)) {
        for (const std::string& name : obs::suite_names()) {
            const obs::ExpectationSuite* suite = obs::find_suite(name);
            std::printf("%-14s %zu rules\n", name.c_str(),
                        suite->rules().size());
        }
        return 0;
    }

    const bool summary = args.get_bool("summary", false);
    const std::string suite_name = args.get("suite", "");
    if (paths.size() != 1 || (suite_name.empty() && !summary))
        return usage(argv[0], false);

    const obs::ExpectationSuite* suite =
        suite_name.empty() ? nullptr : obs::find_suite(suite_name);
    if (suite == nullptr && !suite_name.empty()) {
        std::fprintf(stderr, "trace_check: unknown suite \"%s\"; known:",
                     suite_name.c_str());
        for (const std::string& name : obs::suite_names())
            std::fprintf(stderr, " %s", name.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }

    std::ifstream in(paths[0]);
    if (!in) {
        std::fprintf(stderr, "trace_check: cannot open %s\n", paths[0].c_str());
        return 2;
    }
    std::vector<obs::Event> events;
    obs::JsonlStats stats;
    std::string error;
    if (!obs::parse_events_jsonl(in, events, stats, error)) {
        std::fprintf(stderr, "trace_check: %s: %s\n", paths[0].c_str(),
                     error.c_str());
        return 2;
    }
    if (stats.skipped_lines > 0)
        std::fprintf(stderr,
                     "trace_check: warning: %s: skipped %llu malformed line(s) "
                     "(truncated trailer?)\n",
                     paths[0].c_str(),
                     static_cast<unsigned long long>(stats.skipped_lines));

    if (summary) print_summary(events, stats);
    if (suite == nullptr) return 0;

    const obs::ConformanceReport report =
        obs::check_events(*suite, events, stats.dropped_events);
    std::printf("%s\n", report.render_text().c_str());
    return report.ok() ? 0 : 1;
}

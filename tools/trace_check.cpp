// trace_check — offline scenario-conformance checker (DESIGN.md §11).
//
//   trace_check EVENTS.jsonl --suite=NAME
//   trace_check --list-suites
//
// Replays a structured-event JSONL export (the --events-out format of the
// benches and examples) through the named expectation suite and prints the
// same verdict the online checker would have produced. The meta header's
// dropped_events count triggers partial-trace mode: anchor-dependent rules
// are suppressed for each actor's first observed block, since a wrapped
// ring keeps only a contiguous suffix of the stream.
//
// Exit codes:
//   0  every rule held (PASS)
//   1  at least one violation (FAIL; details on stdout)
//   2  usage error, unreadable file, malformed JSONL, unknown suite
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/expect.hpp"
#include "util/cli.hpp"

namespace {

int usage(const char* argv0, bool requested) {
    std::fprintf(requested ? stdout : stderr,
                 "usage: %s EVENTS.jsonl --suite=NAME\n"
                 "       %s --list-suites\n",
                 argv0, argv0);
    return requested ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace mcauth;

    std::vector<std::string> paths;
    std::vector<const char*> flag_argv = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (argv[i][0] == '-')
            flag_argv.push_back(argv[i]);
        else
            paths.emplace_back(argv[i]);
    }
    const CliArgs args(static_cast<int>(flag_argv.size()), flag_argv.data());
    static constexpr std::string_view kKnown[] = {"suite", "list-suites",
                                                  "help"};
    const auto unknown = args.unknown_keys(kKnown);
    if (!unknown.empty()) {
        for (const std::string& key : unknown)
            std::fprintf(stderr, "trace_check: unknown option --%s\n", key.c_str());
        return usage(argv[0], false);
    }
    if (args.has("help")) return usage(argv[0], true);

    if (args.get_bool("list-suites", false)) {
        for (const std::string& name : obs::suite_names()) {
            const obs::ExpectationSuite* suite = obs::find_suite(name);
            std::printf("%-14s %zu rules\n", name.c_str(),
                        suite->rules().size());
        }
        return 0;
    }

    const std::string suite_name = args.get("suite", "");
    if (paths.size() != 1 || suite_name.empty()) return usage(argv[0], false);

    const obs::ExpectationSuite* suite = obs::find_suite(suite_name);
    if (suite == nullptr) {
        std::fprintf(stderr, "trace_check: unknown suite \"%s\"; known:",
                     suite_name.c_str());
        for (const std::string& name : obs::suite_names())
            std::fprintf(stderr, " %s", name.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }

    std::ifstream in(paths[0]);
    if (!in) {
        std::fprintf(stderr, "trace_check: cannot open %s\n", paths[0].c_str());
        return 2;
    }
    std::vector<obs::Event> events;
    std::uint64_t dropped = 0;
    std::string error;
    if (!obs::parse_events_jsonl(in, events, dropped, error)) {
        std::fprintf(stderr, "trace_check: %s: %s\n", paths[0].c_str(),
                     error.c_str());
        return 2;
    }

    const obs::ConformanceReport report =
        obs::check_events(*suite, events, dropped);
    std::printf("%s\n", report.render_text().c_str());
    return report.ok() ? 0 : 1;
}

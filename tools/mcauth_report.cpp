// mcauth_report — offline postmortem reporter (DESIGN.md §14).
//
//   mcauth_report EVENTS.jsonl [--timeseries=FILE.jsonl] [--out=REPORT.md]
//                 [--top=N]
//
// Joins a structured-event JSONL export with the block-granular TimeSeries
// export of the same run into one markdown postmortem:
//
//   * the per-block verification timeline (received / verified /
//     unverifiable, per-block q) with the q collapse window called out —
//     the "when did it break" story, recovered from the trace alone;
//   * regime shifts and redesigns, annotated with reason codes;
//   * the causal failure-class breakdown from kBlameAttributed events and
//     the top-blamed dependence edges / tree links from the attrib.*
//     counter series — the "why did it break" story;
//   * q_hat and population-quantile timelines where the trace carries them;
//   * the offline verdict of the "attribution" expectation suite.
//
// Exit codes: 0 report written, 2 usage/IO/parse error. The report itself
// never fails the run — it is a diagnostic artifact, not a gate.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/expect.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using mcauth::obs::Event;
using mcauth::obs::EventId;

int usage(const char* argv0, bool requested) {
    std::fprintf(requested ? stdout : stderr,
                 "usage: %s EVENTS.jsonl [--timeseries=FILE.jsonl] "
                 "[--out=REPORT.md] [--top=N]\n",
                 argv0);
    return requested ? 0 : 2;
}

std::string fmt(double v, int digits = 4) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f", digits, v);
    return buf;
}

/// One parsed TimeSeries sample (see obs/timeseries.hpp for the schema).
struct TsSample {
    std::uint32_t block = 0;
    std::string series;
    std::string kind;
    double value = 0.0;
};

bool load_timeseries(const std::string& path, std::vector<TsSample>& out,
                     std::string& error) {
    std::ifstream in(path);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        std::string parse_error;
        const auto doc = mcauth::JsonValue::parse(line, &parse_error);
        if (!doc || !doc->is_object()) continue;  // skip garbage trailers
        if (doc->find("meta") != nullptr) continue;
        if (!doc->has("series")) continue;
        TsSample s;
        s.block = static_cast<std::uint32_t>(doc->get_uint("block", 0));
        s.series = doc->get_string("series");
        s.kind = doc->get_string("kind");
        s.value = doc->get_double("value", 0.0);
        out.push_back(std::move(s));
    }
    return true;
}

struct BlockTally {
    std::uint64_t received = 0;
    std::uint64_t verified = 0;
    std::uint64_t unverifiable = 0;
    std::uint64_t rejected = 0;
    double q() const {
        return received == 0 ? 1.0
                             : static_cast<double>(verified) /
                                   static_cast<double>(received);
    }
};

}  // namespace

int main(int argc, char** argv) {
    using namespace mcauth;

    std::vector<std::string> paths;
    std::vector<const char*> flag_argv = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (argv[i][0] == '-')
            flag_argv.push_back(argv[i]);
        else
            paths.emplace_back(argv[i]);
    }
    const CliArgs args(static_cast<int>(flag_argv.size()), flag_argv.data());
    static constexpr std::string_view kKnown[] = {"timeseries", "out", "top",
                                                  "help"};
    const auto unknown = args.unknown_keys(kKnown);
    if (!unknown.empty()) {
        for (const std::string& key : unknown)
            std::fprintf(stderr, "mcauth_report: unknown option --%s\n",
                         key.c_str());
        return usage(argv[0], false);
    }
    if (args.has("help")) return usage(argv[0], true);
    if (paths.size() != 1) return usage(argv[0], false);
    const std::size_t top_n =
        static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("top", 10)));

    std::ifstream in(paths[0]);
    if (!in) {
        std::fprintf(stderr, "mcauth_report: cannot open %s\n", paths[0].c_str());
        return 2;
    }
    std::vector<Event> events;
    obs::JsonlStats stats;
    std::string error;
    if (!obs::parse_events_jsonl(in, events, stats, error)) {
        std::fprintf(stderr, "mcauth_report: %s: %s\n", paths[0].c_str(),
                     error.c_str());
        return 2;
    }

    std::vector<TsSample> ts;
    const std::string ts_path = args.get("timeseries", "");
    if (!ts_path.empty() && !load_timeseries(ts_path, ts, error)) {
        std::fprintf(stderr, "mcauth_report: %s\n", error.c_str());
        return 2;
    }

    // ---- fold the trace --------------------------------------------------
    std::map<std::uint32_t, BlockTally> blocks;
    std::map<std::string, std::uint64_t> event_counts;
    // block -> (sum, n) of QHatUpdated values.
    std::map<std::uint32_t, std::pair<double, std::uint64_t>> qhat;
    std::map<std::uint32_t, double> pop_q;  // kPopulationBlock 1%-ile q
    struct Annotation {
        std::uint32_t block;
        std::string text;
    };
    std::vector<Annotation> annotations;
    // kDesignServed: index = design::DesignSource (0 fresh / 1 cache /
    // 2 frontier), value = serve latency in seconds.
    struct DesignServeTally {
        std::uint64_t count = 0;
        double latency_sum = 0.0;
        double latency_max = 0.0;
    };
    std::map<std::string, DesignServeTally> design_serves;
    std::uint64_t class_signature_lost = 0;
    std::uint64_t class_paths_cut = 0;
    for (const Event& ev : events) {
        ++event_counts[obs::event_name(ev.id)];
        switch (ev.id) {
            case EventId::kPacketReceived: ++blocks[ev.block].received; break;
            case EventId::kPacketVerified: ++blocks[ev.block].verified; break;
            case EventId::kPacketUnverifiable:
                ++blocks[ev.block].unverifiable;
                break;
            case EventId::kPacketRejected: ++blocks[ev.block].rejected; break;
            case EventId::kQHatUpdated: {
                auto& [sum, n] = qhat[ev.block];
                sum += ev.value;
                ++n;
                break;
            }
            case EventId::kPopulationBlock: pop_q[ev.block] = ev.value; break;
            case EventId::kRegimeShift:
                annotations.push_back(
                    {ev.block, "regime shift -> loss rate " + fmt(ev.value, 3)});
                break;
            case EventId::kRedesignTriggered:
                annotations.push_back(
                    {ev.block,
                     std::string("redesign (") +
                         obs::redesign_reason_name(
                             static_cast<obs::RedesignReason>(ev.index)) +
                         "), q target " + fmt(ev.value, 3)});
                break;
            case EventId::kDesignServed: {
                static const char* kSources[] = {"fresh", "cache", "frontier"};
                const std::string source =
                    ev.index < 3 ? kSources[ev.index] : "unknown";
                DesignServeTally& t = design_serves[source];
                ++t.count;
                t.latency_sum += ev.value;
                t.latency_max = std::max(t.latency_max, ev.value);
                break;
            }
            case EventId::kBlameAttributed:
                if (ev.value == 2.0)
                    ++class_signature_lost;
                else if (ev.value == 3.0)
                    ++class_paths_cut;
                break;
            default: break;
        }
    }

    // A wrapped ring keeps only a suffix of the stream, so the first
    // observed block is usually truncated mid-block (its q can even exceed
    // 1 when verifications survived but the receptions did not). Same
    // policy as trace_check's partial-trace mode: drop the anchor block
    // from the timeline when events were dropped.
    if (stats.dropped_events > 0 && !blocks.empty())
        blocks.erase(blocks.begin());

    // Per-block q and the collapse window: the maximal contiguous run of
    // blocks, containing the argmin, whose q sits in the lower half of the
    // [min, median] spread.
    std::vector<std::pair<std::uint32_t, double>> q_by_block;
    for (const auto& [b, tally] : blocks)
        if (tally.received > 0) q_by_block.emplace_back(b, tally.q());
    double q_min = 1.0, q_median = 1.0;
    std::uint32_t q_min_block = 0;
    std::size_t q_min_at = 0;
    if (!q_by_block.empty()) {
        std::vector<double> sorted;
        sorted.reserve(q_by_block.size());
        for (std::size_t i = 0; i < q_by_block.size(); ++i) {
            sorted.push_back(q_by_block[i].second);
            if (q_by_block[i].second < q_min) {
                q_min = q_by_block[i].second;
                q_min_block = q_by_block[i].first;
                q_min_at = i;
            }
        }
        std::sort(sorted.begin(), sorted.end());
        q_median = sorted[sorted.size() / 2];
    }
    const double collapse_threshold = q_min + 0.5 * (q_median - q_min);
    std::size_t collapse_lo = q_min_at, collapse_hi = q_min_at;
    if (!q_by_block.empty()) {
        while (collapse_lo > 0 &&
               q_by_block[collapse_lo - 1].second <= collapse_threshold)
            --collapse_lo;
        while (collapse_hi + 1 < q_by_block.size() &&
               q_by_block[collapse_hi + 1].second <= collapse_threshold)
            ++collapse_hi;
    }

    // Blame series from the time-series join.
    std::map<std::string, double> edge_blame;
    std::map<std::string, double> link_blame;
    std::map<std::string, std::uint64_t> class_counters;
    std::map<std::string, std::uint64_t> cache_counters;  // design.cache.*
    for (const TsSample& s : ts) {
        if (s.kind != "counter") continue;
        if (s.series.rfind("attrib.edge.", 0) == 0)
            edge_blame[s.series.substr(12)] += s.value;
        else if (s.series.rfind("attrib.link.", 0) == 0)
            link_blame[s.series.substr(12)] += s.value;
        else if (s.series.rfind("attrib.class.", 0) == 0)
            class_counters[s.series.substr(13)] +=
                static_cast<std::uint64_t>(s.value);
        else if (s.series.rfind("design.cache.", 0) == 0)
            cache_counters[s.series.substr(13)] +=
                static_cast<std::uint64_t>(s.value);
    }
    const auto top_of = [&](const std::map<std::string, double>& m) {
        std::vector<std::pair<std::string, double>> v(m.begin(), m.end());
        std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
            return a.second > b.second;
        });
        if (v.size() > top_n) v.resize(top_n);
        return v;
    };

    // Offline conformance: the attribution suite, when the trace carries
    // blame verdicts at all.
    std::string conformance = "no BlameAttributed events in trace";
    if (class_signature_lost + class_paths_cut > 0) {
        const obs::ExpectationSuite* suite = obs::find_suite("attribution");
        const obs::ConformanceReport report =
            obs::check_events(*suite, events, stats.dropped_events);
        conformance = report.ok() ? "PASS" : "FAIL";
        conformance += " (" + std::to_string(report.violations.size()) +
                       " violation(s) across " +
                       std::to_string(suite->rules().size()) + " rules)";
    }

    // ---- render ----------------------------------------------------------
    std::string md;
    md += "# mcauth postmortem\n\n";
    md += "- trace: `" + paths[0] + "` — " + std::to_string(events.size()) +
          " events, " + std::to_string(stats.dropped_events) + " dropped, " +
          std::to_string(stats.skipped_lines) + " malformed line(s) skipped\n";
    if (!ts_path.empty())
        md += "- time series: `" + ts_path + "` — " + std::to_string(ts.size()) +
              " samples\n";
    if (!blocks.empty())
        md += "- blocks " + std::to_string(blocks.begin()->first) + ".." +
              std::to_string(blocks.rbegin()->first) + "\n";
    md += "- attribution suite: " + conformance + "\n\n";

    md += "## Event counts\n\n| event | count |\n|---|---|\n";
    for (const auto& [name, count] : event_counts)
        md += "| " + name + " | " + std::to_string(count) + " |\n";
    md += "\n";

    if (!q_by_block.empty()) {
        md += "## Verification timeline\n\n";
        md += "Per-block q = verified / received, pooled over receivers.\n\n";
        md += "- q median " + fmt(q_median) + ", q min **" + fmt(q_min) +
              "** at block " + std::to_string(q_min_block) + "\n";
        if (q_min < q_median)
            md += "- collapse window: blocks " +
                  std::to_string(q_by_block[collapse_lo].first) + ".." +
                  std::to_string(q_by_block[collapse_hi].first) + " hold q <= " +
                  fmt(collapse_threshold) + " (" +
                  std::to_string(collapse_hi - collapse_lo + 1) + " block(s))\n";
        md += "\n| block | received | verified | unverifiable | rejected | q |\n";
        md += "|---|---|---|---|---|---|\n";
        // Cap the table: always show annotated + collapse-window blocks,
        // stride through the rest.
        const std::size_t max_rows = 48;
        const std::size_t stride =
            q_by_block.size() <= max_rows ? 1 : q_by_block.size() / max_rows + 1;
        for (std::size_t i = 0; i < q_by_block.size(); ++i) {
            const bool in_collapse = i >= collapse_lo && i <= collapse_hi;
            if (!in_collapse && i % stride != 0) continue;
            const std::uint32_t b = q_by_block[i].first;
            const BlockTally& t = blocks[b];
            md += "| " + std::to_string(b) + " | " + std::to_string(t.received) +
                  " | " + std::to_string(t.verified) + " | " +
                  std::to_string(t.unverifiable) + " | " +
                  std::to_string(t.rejected) + " | " + fmt(q_by_block[i].second) +
                  (in_collapse ? " :small_red_triangle_down:" : "") + " |\n";
        }
        md += "\n";
    }

    if (!annotations.empty()) {
        md += "## Regime shifts & redesigns\n\n";
        std::stable_sort(annotations.begin(), annotations.end(),
                         [](const Annotation& a, const Annotation& b) {
                             return a.block < b.block;
                         });
        for (const Annotation& a : annotations)
            md += "- block " + std::to_string(a.block) + ": " + a.text + "\n";
        md += "\n";
    }

    if (!design_serves.empty() || !cache_counters.empty()) {
        md += "## Design service\n\n";
        if (!design_serves.empty()) {
            md += "| source | serves | mean latency (ms) | max latency (ms) |\n";
            md += "|---|---|---|---|\n";
            std::uint64_t total = 0;
            for (const auto& [source, t] : design_serves) {
                total += t.count;
                const double mean =
                    t.count ? t.latency_sum / static_cast<double>(t.count) : 0.0;
                md += "| " + source + " | " + std::to_string(t.count) + " | " +
                      fmt(1e3 * mean) + " | " + fmt(1e3 * t.latency_max) + " |\n";
            }
            const std::uint64_t fresh =
                design_serves.count("fresh") ? design_serves.at("fresh").count : 0;
            if (total > 0)
                md += "\n- " + std::to_string(total) + " design(s) served, " +
                      fmt(100.0 * static_cast<double>(total - fresh) /
                              static_cast<double>(total),
                          1) +
                      "% without a fresh build\n";
        }
        if (!cache_counters.empty()) {
            md += "\n| design.cache.* | total |\n|---|---|\n";
            for (const auto& [name, count] : cache_counters)
                md += "| " + name + " | " + std::to_string(count) + " |\n";
        }
        md += "\n";
    }

    md += "## Failure classes\n\n";
    if (class_signature_lost + class_paths_cut == 0 && class_counters.empty()) {
        md += "No causal attribution in this trace.\n\n";
    } else {
        md += "| class | count | source |\n|---|---|---|\n";
        if (class_signature_lost + class_paths_cut > 0) {
            md += "| signature-lost | " + std::to_string(class_signature_lost) +
                  " | BlameAttributed events |\n";
            md += "| paths-cut | " + std::to_string(class_paths_cut) +
                  " | BlameAttributed events |\n";
        }
        for (const auto& [name, count] : class_counters)
            md += "| " + name + " | " + std::to_string(count) +
                  " | attrib.class.* series |\n";
        md += "\n";
    }

    if (!edge_blame.empty()) {
        md += "## Top-blamed dependence edges\n\n| edge (u>v) | blame |\n|---|---|\n";
        for (const auto& [name, value] : top_of(edge_blame))
            md += "| " + name + " | " + std::to_string(static_cast<long long>(value)) +
                  " |\n";
        md += "\n";
    }
    if (!link_blame.empty()) {
        md += "## Top-blamed tree links\n\n| link (node) | first-drop blame |\n|---|---|\n";
        for (const auto& [name, value] : top_of(link_blame))
            md += "| " + name + " | " + std::to_string(static_cast<long long>(value)) +
                  " |\n";
        md += "\n";
    }

    if (!qhat.empty()) {
        md += "## q_hat timeline (receiver loss estimates)\n\n";
        double first = 0.0, last = 0.0, lo = 1e300, hi = -1e300;
        bool first_set = false;
        for (const auto& [b, entry] : qhat) {
            const double mean = entry.second ? entry.first / double(entry.second) : 0.0;
            if (!first_set) {
                first = mean;
                first_set = true;
            }
            last = mean;
            lo = std::min(lo, mean);
            hi = std::max(hi, mean);
        }
        md += "- " + std::to_string(qhat.size()) + " blocks with estimates: first " +
              fmt(first) + ", min " + fmt(lo) + ", max " + fmt(hi) + ", last " +
              fmt(last) + "\n\n";
    }
    if (!pop_q.empty()) {
        md += "## Population 1%-ile q timeline\n\n";
        double lo = 1e300, hi = -1e300;
        for (const auto& [b, v] : pop_q) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        md += "- " + std::to_string(pop_q.size()) + " population blocks, 1%-ile q in [" +
              fmt(lo) + ", " + fmt(hi) + "]\n\n";
    }

    // Manual value series (q_min, true_loss, est_loss, ...) from the join.
    std::map<std::string, std::vector<std::pair<std::uint32_t, double>>> value_series;
    for (const TsSample& s : ts)
        if (s.kind == "value") value_series[s.series].emplace_back(s.block, s.value);
    if (!value_series.empty()) {
        md += "## Time-series summaries\n\n| series | points | first | min | max | last |\n";
        md += "|---|---|---|---|---|---|\n";
        for (auto& [name, pts] : value_series) {
            std::sort(pts.begin(), pts.end());
            double lo = pts.front().second, hi = pts.front().second;
            for (const auto& [b, v] : pts) {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
            md += "| " + name + " | " + std::to_string(pts.size()) + " | " +
                  fmt(pts.front().second) + " | " + fmt(lo) + " | " + fmt(hi) +
                  " | " + fmt(pts.back().second) + " |\n";
        }
        md += "\n";
    }

    const std::string out_path = args.get("out", "");
    if (out_path.empty()) {
        std::fputs(md.c_str(), stdout);
    } else {
        std::ofstream out(out_path);
        if (!out || !(out << md)) {
            std::fprintf(stderr, "mcauth_report: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        std::printf("mcauth_report: wrote %s (%zu bytes)\n", out_path.c_str(),
                    md.size());
    }
    return 0;
}
